// Package simnet is a cycle-accurate store-and-forward packet simulator
// over arbitrary digraphs. The paper proves structural results (which
// digraphs OTIS realizes and at what hardware cost) but runs no network
// experiments; simnet adds a minimal performance substrate so the
// repository can demonstrate that the realized networks behave as the
// graph theory predicts: packets routed on B(d, D) realized by an OTIS
// layout never exceed D hops, mean latency tracks the mean distance, and
// so on.
//
// Model: every arc is a link of unit bandwidth (one packet per cycle) with
// a FIFO output queue at its tail. A hop costs HopLatency cycles of wire
// time plus any queueing delay. Routing is pluggable; shortest-path table
// routing and native de Bruijn word routing are provided.
package simnet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/obs"
	"repro/internal/word"
)

// Router chooses the next hop for a packet at node `at` destined to `dst`.
// It returns the arc index (position in the digraph's adjacency list of
// `at`) to forward on, or -1 if unreachable.
type Router interface {
	NextArc(at, dst int) int
}

// TableRouter routes by precomputed shortest-path next hops held in one
// flat []int32 arc-index slab: arcs[at*n+dst] is the out-arc to forward
// on, -1 when dst is unreachable or at = dst. One 4-byte entry per
// ordered pair replaces the two ragged n×n []int tables the router
// historically kept (next-hop vertices plus a memoized arc index —
// ≈2·n²·8 bytes), and the arc index is derived directly during the
// reverse-BFS pass instead of by an O(n²·deg) scan afterwards. The slab
// is immutable after construction and safe to share across goroutines.
type TableRouter struct {
	n    int
	arcs []int32
}

// NewTableRouterObserved is NewTableRouter with build telemetry: the
// wall time and slab footprint of the construction are recorded into
// rec (router_build_ns / router_slab_bytes gauges). A nil rec degrades
// to the plain constructor.
func NewTableRouterObserved(g *digraph.Digraph, rec *obs.Recorder) *TableRouter {
	//lint:ignore determinism router build time is telemetry, excluded from reproducibility comparisons
	start := time.Now()
	r := NewTableRouter(g)
	//lint:ignore determinism router build time is telemetry, excluded from reproducibility comparisons
	rec.RouterBuild(time.Since(start).Nanoseconds(), int64(r.Footprint()))
	return r
}

// guardIndexInt32 panics unless count distinct ids fit the int32 slab,
// queue and pipeline entries the run loops narrow into. One call at
// function entry dominates every narrowing in that function.
func guardIndexInt32(count int, what string) {
	if int64(count) > math.MaxInt32 {
		panic(fmt.Sprintf("simnet: %d %s exceed the int32 index range", count, what))
	}
}

// NewTableRouter builds the shortest-path arc slab for g.
func NewTableRouter(g *digraph.Digraph) *TableRouter {
	n := g.N()
	guardIndexInt32(n, "nodes")
	guardIndexInt32(g.M(), "arcs")
	// CSR of the reverse digraph with the forward arc index carried
	// alongside each reversed arc: entry (u, k) at head v means arc k of
	// u points to v. Discovering u from v in a reverse BFS rooted at dst
	// then yields the routing decision (forward on arc k) immediately.
	base := make([]int32, n+1)
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			base[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		base[v+1] += base[v]
	}
	revTail := make([]int32, g.M())
	revArc := make([]int32, g.M())
	fill := make([]int32, n)
	for u := 0; u < n; u++ {
		for k, v := range g.Out(u) {
			slot := base[v] + fill[v]
			revTail[slot] = int32(u)
			revArc[slot] = int32(k)
			fill[v]++
		}
	}

	arcs := make([]int32, n*n)
	for i := range arcs {
		arcs[i] = -1
	}
	seen := make([]int32, n) // epoch marks: seen[u] == dst+1 ⇔ visited this pass
	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		epoch := int32(dst + 1)
		seen[dst] = epoch
		queue = append(queue[:0], int32(dst))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for idx := base[v]; idx < base[v+1]; idx++ {
				u := revTail[idx]
				if seen[u] == epoch {
					continue
				}
				seen[u] = epoch
				arcs[int(u)*n+dst] = revArc[idx]
				queue = append(queue, u)
			}
		}
	}
	return &TableRouter{n: n, arcs: arcs}
}

// NextArc implements Router.
func (r *TableRouter) NextArc(at, dst int) int { return int(r.arcs[at*r.n+dst]) }

// Footprint returns the bytes held by the router's table storage — 4·n²,
// the single surviving table (asserted by tests against the historical
// double-table layout).
func (r *TableRouter) Footprint() int { return 4 * len(r.arcs) }

// DeBruijnRouter routes natively on B(d, D) congruence labels using the
// left-shift rule — no tables, O(D) work per decision, exactly the
// self-routing the de Bruijn literature advertises.
type DeBruijnRouter struct {
	d, D int
	n    int // d^D, precomputed with an overflow-guarded power
}

// NewDeBruijnRouter returns the native router for B(d, D).
func NewDeBruijnRouter(d, D int) *DeBruijnRouter {
	return &DeBruijnRouter{d: d, D: D, n: word.Pow(d, D)}
}

// NextArc implements Router. In congruence form the successor via letter α
// is (d·u + α) mod d^D, which is adjacency position α; the canonical
// shortest path feeds in the destination's remaining letters.
func (r *DeBruijnRouter) NextArc(at, dst int) int {
	if at == dst {
		return -1
	}
	path := debruijn.RouteInts(r.d, r.D, at, dst)
	next := path[1]
	// Recover α from next = (d·at + α) mod n.
	n := r.n
	alpha := (next - r.d*at) % n
	if alpha < 0 {
		alpha += n
	}
	return alpha % r.d
}

// Packet is one simulated datagram.
type Packet struct {
	ID        int
	Src, Dst  int
	Release   int // injection cycle
	Delivered int // delivery cycle (-1 while in flight)
	Hops      int
}

// Config tunes the simulation.
type Config struct {
	// HopLatency is the wire time of one hop in cycles (≥ 1).
	HopLatency int
	// MaxCycles aborts the run (0 means 64·n·HopLatency + total packets,
	// a generous bound).
	MaxCycles int
	// QueueCapacity bounds every per-arc output queue (0: unbounded,
	// the historical behaviour). With a bound, a packet whose next queue
	// is full is not dropped silently — it holds in place upstream
	// (credit-based backpressure) until space opens or its hold budget
	// runs out, at which point it drops as DroppedQueueFull.
	QueueCapacity int
	// HoldBudget is the lifetime number of hold-in-place cycles a packet
	// may spend against full queues before it is dropped
	// (0: 4·QueueCapacity+16; meaningful only with QueueCapacity > 0).
	HoldBudget int
}

// DefaultConfig returns unit hop latency.
func DefaultConfig() Config { return Config{HopLatency: 1} }

// Result summarizes a simulation run.
type Result struct {
	Delivered   int
	Dropped     int // packets with no route
	Cycles      int // cycle at which the last packet was delivered
	TotalHops   int
	MaxHops     int
	TotalWait   int // cycles spent queued (latency minus wire time)
	MeanLatency float64
	MeanHops    float64
	// MaxQueue is the deepest any output queue got during the run — the
	// buffer size a hardware implementation would need to avoid drops.
	MaxQueue int
	// HotNode is a vertex owning a queue that reached MaxQueue.
	HotNode int
	// Shed counts packets refused by admission control (WithAdmission)
	// before ever entering the network. Shed is disjoint from Dropped:
	// Delivered + Dropped + Shed == Offered on every completed run.
	Shed int
	// DroppedQueueFull counts packets that exhausted their hold budget
	// against full bounded queues (included in Dropped).
	DroppedQueueFull int
	// Holds counts hold-in-place backpressure events: a packet kept
	// upstream for one cycle because its next queue was full.
	Holds int
	// PeakResident is the most packets simultaneously buffered in the
	// network (arc queues plus link pipelines) — the aggregate buffer
	// memory a hardware realization needs. With QueueCapacity set it is
	// bounded by topology alone, independent of offered load.
	PeakResident int
	Packets      []Packet
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("delivered=%d dropped=%d cycles=%d meanLatency=%.2f meanHops=%.2f maxHops=%d",
		r.Delivered, r.Dropped, r.Cycles, r.MeanLatency, r.MeanHops, r.MaxHops)
}

// inflight is a packet moving through a link pipeline.
type inflight struct {
	pkt   int // index into packets
	ready int // cycle at which it pops out at the head vertex
}

// Network binds a digraph, a router and a config into a runnable
// simulation. A Network is safe for concurrent Run/RunWithFaults calls:
// the compiled router and distance slab are shared read-only, while each
// run checks a scratch arena out of a pool so repeated runs (sweeps)
// reuse their queue/pipeline/metadata storage instead of reallocating it
// per point.
type Network struct {
	g      *digraph.Digraph
	router Router
	cfg    Config

	// arcBase[u] is the flat index of node u's first out-arc: queues and
	// pipelines live in M-length slabs addressed by arcBase[u]+k.
	arcBase []int32
	maxDeg  int

	// dist is the fault-free all-pairs distance slab, built on first use
	// and then shared read-only by every fault-aware run and sweep worker.
	distOnce sync.Once
	dist     []int32

	// diam caches g.Diameter(), which fault runs consult for TTL defaults.
	diamOnce sync.Once
	diam     int

	// rec is the attached metrics recorder (nil: uninstrumented). Every
	// recording site is nil-guarded so the fast path stays
	// allocation-free; WithRecorder overrides it per run.
	rec *obs.Recorder

	scratch sync.Pool // *arena
}

// Observe attaches a metrics recorder to the network: subsequent runs
// record per-arc traversals, queue depths, latency histograms and
// drop/reroute/retry causes into it. Passing nil detaches. Attach
// before starting concurrent runs; the recorder itself is safe to share
// between sweep workers.
func (nw *Network) Observe(rec *obs.Recorder) {
	rec.SizeArcs(int(nw.arcBase[nw.g.N()]))
	nw.rec = rec
}

// ArcIndex returns the flat CSR index of out-arc k of node tail — the
// index a Recorder's per-arc slabs are addressed by.
func (nw *Network) ArcIndex(tail, k int) int { return int(nw.arcBase[tail]) + k }

// New creates a network simulation over g.
func New(g *digraph.Digraph, router Router, cfg Config) (*Network, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("simnet: empty digraph")
	}
	if cfg.HopLatency < 1 {
		return nil, fmt.Errorf("simnet: HopLatency must be >= 1, got %d", cfg.HopLatency)
	}
	if cfg.QueueCapacity < 0 {
		return nil, fmt.Errorf("simnet: QueueCapacity must be >= 0, got %d", cfg.QueueCapacity)
	}
	if cfg.HoldBudget < 0 {
		return nil, fmt.Errorf("simnet: HoldBudget must be >= 0, got %d", cfg.HoldBudget)
	}
	return newNetwork(g, router, cfg), nil
}

// newNetwork builds the derived state for already-validated inputs (the
// shadow network of TracedRun reuses it without re-threading the error).
func newNetwork(g *digraph.Digraph, router Router, cfg Config) *Network {
	n := g.N()
	guardIndexInt32(g.M(), "arcs")
	arcBase := make([]int32, n+1)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg := g.OutDegree(u)
		arcBase[u+1] = arcBase[u] + int32(deg)
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	return &Network{g: g, router: router, cfg: cfg, arcBase: arcBase, maxDeg: maxDeg}
}

// distSlab returns the fault-free all-pairs distance slab, building it
// exactly once per Network; callers share it read-only.
func (nw *Network) distSlab() []int32 {
	nw.distOnce.Do(func() { nw.dist = nw.g.DistanceSlab() })
	return nw.dist
}

// diameter returns g.Diameter(), computed once per Network.
func (nw *Network) diameter() int {
	nw.diamOnce.Do(func() { nw.diam = nw.g.Diameter() })
	return nw.diam
}

// defaultBudget is the generous cycle bound used when MaxCycles is 0.
func (nw *Network) defaultBudget(pkts, hopLatency int) int {
	return 64*nw.g.N()*hopLatency + 16*pkts + 1024
}

// Run simulates until every packet is delivered or dropped, or MaxCycles
// elapses. The packets slice is copied; releases may be in any order.
//
// Deprecated: use RunOpts, which unifies the run entry points behind
// functional options (Run(pkts) is RunOpts(Fixed(pkts))). Run remains a
// thin wrapper and is not going away.
func (nw *Network) Run(packets []Packet) Result {
	return nw.run(packets, nw.baseTuning(0), nw.rec)
}

// runTuning is the per-run overload-protection tuning threaded through
// run: the cycle budget, the per-arc queue bound, the lifetime
// per-packet hold budget and the admission regulator. The zero value
// reproduces the historical unbounded behaviour.
type runTuning struct {
	budget int
	qcap   int         // per-arc queue bound (0: unbounded)
	hold   int         // per-packet hold budget (0: default when qcap > 0)
	admit  *admitState // nil: no admission control
}

// withDefaults resolves the hold budget a queue bound implies.
func (t runTuning) withDefaults() runTuning {
	if t.qcap > 0 && t.hold < 1 {
		t.hold = 4*t.qcap + 16
	}
	return t
}

// baseTuning derives the tuning the Network's own Config implies.
func (nw *Network) baseTuning(budget int) runTuning {
	t := runTuning{budget: budget, qcap: nw.cfg.QueueCapacity, hold: nw.cfg.HoldBudget}
	return t.withDefaults()
}

// enqStatus reports the outcome of a routing-and-enqueue attempt.
type enqStatus int8

const (
	enqOK      enqStatus = iota // queued on the chosen arc
	enqNoRoute                  // no route: dropped, accounted by enqueue
	enqFull                     // bounded queue full: caller holds the packet upstream
)

// runState threads run's per-call state through enqueue. A method on a
// stack value replaces the closure run used to define: the run loop is a
// hot path and closures allocate.
type runState struct {
	nw       *Network
	pkts     []Packet
	queues   []fifo
	res      *Result
	rec      *obs.Recorder
	qcap     int // per-arc queue bound (0: unbounded)
	resident int // packets currently buffered in queues + pipelines
}

// enter records one packet entering the network's buffers.
func (rs *runState) enter() {
	rs.resident++
	if rs.resident > rs.res.PeakResident {
		rs.res.PeakResident = rs.resident
	}
}

// leave records one packet leaving the network's buffers (delivered or
// dropped mid-flight).
func (rs *runState) leave() { rs.resident-- }

// enqueue routes pkt out of node at, pushing it onto the chosen arc's
// queue. enqNoRoute is accounted (drop counters) here; enqFull leaves
// all accounting to the caller, which holds the packet upstream.
//
//lint:hotpath
func (rs *runState) enqueue(at, pkt int) enqStatus {
	arc := rs.nw.router.NextArc(at, rs.pkts[pkt].Dst)
	if arc < 0 {
		rs.res.Dropped++
		if rs.rec != nil {
			rs.rec.Drop(obs.DropNoRoute)
		}
		return enqNoRoute
	}
	//lint:ignore slabindex arc < maxDeg ≤ M, dominated by newNetwork's guardIndexInt32
	flat := rs.nw.arcBase[at] + int32(arc)
	q := &rs.queues[flat]
	if rs.qcap > 0 && q.depth() >= rs.qcap {
		return enqFull
	}
	//lint:ignore slabindex pkt < len(pkts), dominated by run's guardIndexInt32
	q.push(int32(pkt))
	depth := q.depth()
	if depth > rs.res.MaxQueue {
		rs.res.MaxQueue = depth
		rs.res.HotNode = at
	}
	if rs.rec != nil {
		rs.rec.QueueDepth(int(flat), depth)
	}
	return enqOK
}

// holdOrDrop charges one hold-in-place cycle to pkt's budget. It
// reports true when the packet may keep waiting (hold accounted) and
// false when the budget is exhausted — the packet has been dropped as
// DroppedQueueFull and the caller must remove it.
//
//lint:hotpath
func (rs *runState) holdOrDrop(meta []pktMeta, pkt, budget int) bool {
	meta[pkt].holds++
	if meta[pkt].holds > budget {
		rs.res.Dropped++
		rs.res.DroppedQueueFull++
		if rs.rec != nil {
			rs.rec.Drop(obs.DropQueueFull)
		}
		return false
	}
	rs.res.Holds++
	if rs.rec != nil {
		rs.rec.Hold(rs.qcap)
	}
	return true
}

// run is Run with explicit tuning (budget, queue bound, hold budget,
// admission) and recorder; sweeps use it to retune the budget per point
// while reusing one Network. All recording sites are rec != nil guarded
// so the uninstrumented path stays allocation-free.
//
//lint:hotpath
func (nw *Network) run(packets []Packet, tun runTuning, rec *obs.Recorder) Result {
	guardIndexInt32(len(packets), "packets")
	//lint:ignore hotalloc pkts escapes into Result.Packets: one allocation per run, not per cycle
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
	}

	n := nw.g.N()
	ar, reused := nw.getArena()
	defer nw.putArena(ar)
	if rec != nil {
		rec.Arena(reused)
	}
	queues := ar.queues // per-arc FIFO queues, flat by arcBase
	pipes := ar.pipes   // per-arc link pipelines, flat by arcBase

	maxCycles := tun.budget
	if maxCycles == 0 {
		maxCycles = nw.cfg.MaxCycles
	}
	if maxCycles == 0 {
		maxCycles = nw.defaultBudget(len(pkts), nw.cfg.HopLatency)
		if tun.admit != nil {
			// Room for the regulator to trickle the whole workload in.
			maxCycles += int(float64(len(pkts))/tun.admit.rate) + tun.admit.maxDelay
		}
	}

	// Per-packet hold bookkeeping exists only under bounded queues; the
	// unbounded fast path never touches meta.
	var meta []pktMeta
	if tun.qcap > 0 {
		meta = ar.metaFor(len(pkts))
	}
	holdq := ar.holdq[:0]
	// A full link window (in-flight wire slots plus held packets) stops
	// accepting departures — the credit that propagates backpressure.
	credits := 0
	if tun.qcap > 0 {
		credits = tun.qcap + nw.cfg.HopLatency
	}

	res := Result{}
	remaining := 0
	// Route-or-drop at injection time; survivors are injected in sorted
	// (Release, index) order via a cursor — no per-cycle map lookups.
	order := ar.order[:0]
	for i := range pkts {
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		if nw.router.NextArc(pkts[i].Src, pkts[i].Dst) < 0 {
			res.Dropped++
			if rec != nil {
				rec.Drop(obs.DropNoRoute)
			}
			continue
		}
		order = append(order, int32(i))
		remaining++
	}
	sortByRelease(order, pkts)
	ar.order = order
	cursor := 0

	rs := runState{nw: nw, pkts: pkts, queues: queues, res: &res, rec: rec, qcap: tun.qcap}
	admit := tun.admit
	heldLast := false // congestion signal: a hold happened last cycle

	for cycle := 0; remaining > 0 && cycle <= maxCycles; cycle++ {
		holdsBefore := res.Holds
		if admit != nil {
			admit.refill(heldLast)
		}

		// Inject: source-held packets (admitted earlier, source queue
		// full) retry first, then the release cursor drains through the
		// admission regulator.
		if len(holdq) > 0 {
			nh := holdq[:0]
			for _, i32 := range holdq {
				i := int(i32)
				switch rs.enqueue(pkts[i].Src, i) {
				case enqOK:
					rs.enter()
				case enqNoRoute:
					remaining--
				case enqFull:
					if !rs.holdOrDrop(meta, i, tun.hold) {
						remaining--
						continue
					}
					nh = append(nh, i32)
				}
			}
			holdq = nh
		}
		for cursor < len(order) && pkts[order[cursor]].Release <= cycle {
			i := int(order[cursor])
			if admit != nil {
				if cycle-pkts[i].Release > admit.maxDelay {
					cursor++
					res.Shed++
					if rec != nil {
						rec.Shed()
					}
					remaining--
					continue
				}
				if !admit.take() {
					break // out of tokens: the head waits in release order
				}
			}
			cursor++
			switch rs.enqueue(pkts[i].Src, i) {
			case enqOK:
				rs.enter()
			case enqNoRoute:
				remaining--
			case enqFull:
				// Admitted but the source queue is full: hold at the
				// source and retry ahead of the cursor next cycle.
				if !rs.holdOrDrop(meta, i, tun.hold) {
					remaining--
					continue
				}
				holdq = append(holdq, int32(i))
			}
		}

		// Arrivals: packets whose wire time completes this cycle. The
		// hop is counted when the next queue accepts the packet; a full
		// queue keeps it on the upstream link (credit-based
		// backpressure) to retry next cycle.
		for u := 0; u < n; u++ {
			out := nw.g.Out(u)
			lo, hi := nw.arcBase[u], nw.arcBase[u+1]
			for a := lo; a < hi; a++ {
				pipe := pipes[a]
				keep := pipe[:0]
				for _, fl := range pipe {
					if fl.ready > cycle {
						keep = append(keep, fl)
						continue
					}
					v := out[a-lo]
					p := &pkts[fl.pkt]
					if v == p.Dst {
						p.Hops++
						if rec != nil {
							rec.ArcTraverse(int(a))
						}
						p.Delivered = cycle
						res.Delivered++
						remaining--
						rs.leave()
						if cycle > res.Cycles {
							res.Cycles = cycle
						}
						if rec != nil {
							rec.Deliver(cycle-p.Release, p.Hops)
						}
						continue
					}
					switch rs.enqueue(v, fl.pkt) {
					case enqOK:
						p.Hops++
						if rec != nil {
							rec.ArcTraverse(int(a))
						}
					case enqNoRoute:
						p.Hops++
						if rec != nil {
							rec.ArcTraverse(int(a))
						}
						remaining--
						rs.leave()
					case enqFull:
						if !rs.holdOrDrop(meta, fl.pkt, tun.hold) {
							remaining--
							rs.leave()
							continue
						}
						keep = append(keep, inflight{pkt: fl.pkt, ready: cycle + 1})
					}
				}
				pipes[a] = keep
			}
		}

		// Departures: each link accepts one queued packet per cycle,
		// and only while it has credit (its window of wire slots plus
		// held packets is not full).
		for a := range queues {
			q := &queues[a]
			if q.depth() == 0 {
				continue
			}
			if credits > 0 && len(pipes[a]) >= credits {
				continue
			}
			pipes[a] = append(pipes[a], inflight{
				pkt:   int(q.pop()),
				ready: cycle + nw.cfg.HopLatency,
			})
		}

		heldLast = res.Holds > holdsBefore
	}
	ar.holdq = holdq

	// Aggregate.
	latencySum := 0
	for i := range pkts {
		p := pkts[i]
		if p.Delivered < 0 {
			continue
		}
		res.TotalHops += p.Hops
		if p.Hops > res.MaxHops {
			res.MaxHops = p.Hops
		}
		latencySum += p.Delivered - p.Release
		res.TotalWait += (p.Delivered - p.Release) - p.Hops*nw.cfg.HopLatency
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latencySum) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts
	return res
}
