package simnet

import (
	"math"
	"testing"

	"repro/internal/debruijn"
)

func TestLoadSweepMonotoneAndAnchored(t *testing.T) {
	g := debruijn.DeBruijn(2, 6)
	router := NewTableRouter(g)
	rates := []float64{0.05, 0.2, 0.5, 0.9}
	points, err := LoadSweep(g, router, rates, 1500, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rates) {
		t.Fatalf("%d points", len(points))
	}
	// Zero-load anchor: at the lightest load the mean latency must be
	// close to the analytic mean distance.
	zero, ok := ZeroLoadLatency(g, 1)
	if !ok {
		t.Fatal("no zero-load latency")
	}
	if math.Abs(points[0].MeanLatency-zero) > 1.0 {
		t.Errorf("light-load latency %.2f far from analytic %.2f",
			points[0].MeanLatency, zero)
	}
	// Latency must not decrease with offered load (allow small noise).
	for i := 1; i < len(points); i++ {
		if points[i].MeanLatency+0.25 < points[i-1].MeanLatency {
			t.Errorf("latency dropped with load: %v then %v", points[i-1], points[i])
		}
	}
	// Queueing must grow.
	if points[len(points)-1].MeanWait <= points[0].MeanWait {
		t.Errorf("no queueing growth across the sweep: %v vs %v",
			points[0], points[len(points)-1])
	}
}

func TestLoadSweepValidation(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	if _, err := LoadSweep(g, NewTableRouter(g), []float64{0}, 10, 1); err == nil {
		t.Error("rate 0 accepted")
	}
	if _, err := LoadSweep(g, NewTableRouter(g), []float64{1.5}, 10, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestZeroLoadLatency(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	z1, ok := ZeroLoadLatency(g, 1)
	if !ok {
		t.Fatal("not ok")
	}
	z3, _ := ZeroLoadLatency(g, 3)
	if math.Abs(z3-3*z1) > 1e-12 {
		t.Error("hop latency scaling wrong")
	}
	mean, _ := g.MeanDistance()
	if z1 != mean {
		t.Error("zero load != mean distance at unit latency")
	}
}

func TestSweepPointString(t *testing.T) {
	p := SweepPoint{Rate: 0.5, MeanLatency: 10.5, MeanWait: 4.2, Delivered: 100, Saturated: true}
	if p.String() == "" || p.String()[0] != 'r' {
		t.Error("bad string")
	}
}
