package simnet

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
)

// TestDeflectionDrainInvariant: a completed run and a truncated run both
// satisfy Delivered + Dropped == Offered, with Dropped split into the
// stuck and horizon buckets.
func TestDeflectionDrainInvariant(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	dn, err := NewDeflection(g, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Completed run: nothing dropped.
	res := dn.Run(UniformRandom(g.N(), 100, 7))
	if res.Offered != 100 || res.Delivered != 100 || res.Dropped != 0 {
		t.Fatalf("completed run accounting: %+v", res)
	}
	if res.DeliveredFraction() != 1 {
		t.Errorf("DeliveredFraction = %v", res.DeliveredFraction())
	}

	// Horizon drop: a release beyond the cycle limit (64 * n cycles)
	// means the packet is never injected.
	far := dn.limit + 10
	res = dn.Run([]Packet{
		{ID: 0, Src: 0, Dst: 3},
		{ID: 1, Src: 1, Dst: 5, Release: far},
	})
	if res.Offered != 2 || res.Delivered != 1 {
		t.Fatalf("horizon run: %+v", res)
	}
	if res.Dropped != 1 || res.DroppedHorizon != 1 || res.Stuck != 0 {
		t.Errorf("horizon drop misbucketed: %+v", res)
	}
	if res.Delivered+res.Dropped != res.Offered {
		t.Errorf("drain invariant broken: %+v", res)
	}
	if res.Packets[1].Delivered >= 0 {
		t.Errorf("horizon packet marked delivered")
	}

	// Flood one source with far more packets than the cycle limit admits
	// (one injection per free output per cycle). Release-eligible packets
	// still pending at the drain were refused entry by their full node —
	// DroppedQueueFull, a distinct cause from the in-flight Stuck bucket.
	flood := make([]Packet, 40*dn.limit)
	for i := range flood {
		flood[i] = Packet{ID: i, Src: 0, Dst: g.N() - 1}
	}
	res = dn.Run(flood)
	if res.Delivered+res.Dropped != res.Offered {
		t.Fatalf("flood drain invariant broken: %+v", res)
	}
	if res.DroppedQueueFull == 0 {
		t.Errorf("flood run reports no injection-capacity drops: %+v", res)
	}
	if res.DroppedHorizon != 0 {
		t.Errorf("flood run misbucketed eligible packets as horizon: %+v", res)
	}
	if res.Stuck+res.DroppedHorizon+res.DroppedQueueFull != res.Dropped {
		t.Errorf("flood drop buckets don't sum: %+v", res)
	}
	if got := res.DeliveredFraction(); got <= 0 || got >= 1 {
		t.Errorf("flood DeliveredFraction = %v, want in (0,1)", got)
	}

	// Zero-offered run never divides by zero.
	if f := dn.Run(nil).DeliveredFraction(); f != 0 {
		t.Errorf("empty run DeliveredFraction = %v", f)
	}
}

// TestDeflectionObserved: the instrumented deflection run records arc
// traversals summing to total hops, plus deflection and delivery
// counters matching the result.
func TestDeflectionObserved(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	dn, err := NewDeflection(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	dn.Observe(rec)
	res := dn.Run(UniformRandom(g.N(), 500, 11))
	if res.Delivered != 500 {
		t.Fatalf("undelivered: %v", res)
	}
	snap := rec.Snapshot()
	if got := snap.Counters[obs.MetricDelivered]; got != 500 {
		t.Errorf("delivered counter %d", got)
	}
	if got := snap.Counters[obs.MetricDeflections]; got != int64(res.Deflections) {
		t.Errorf("deflections counter %d, result %d", got, res.Deflections)
	}
	var slab int64
	for _, v := range rec.ArcTraversals() {
		slab += v
	}
	if slab != int64(res.TotalHops) {
		t.Errorf("arc slab total %d, TotalHops %d", slab, res.TotalHops)
	}
	if len(rec.ArcTraversals()) != g.N()*2 {
		t.Errorf("slab sized %d, want %d", len(rec.ArcTraversals()), g.N()*2)
	}
	if err := validateSnapshot(snap); err != nil {
		t.Errorf("deflection snapshot invalid: %v", err)
	}

	// Instrumented and uninstrumented runs agree.
	dn2, _ := NewDeflection(g, 2)
	bare := dn2.Run(UniformRandom(g.N(), 500, 11))
	if bare.Delivered != res.Delivered || bare.TotalHops != res.TotalHops ||
		bare.Deflections != res.Deflections || bare.Cycles != res.Cycles {
		t.Errorf("instrumented deflection diverged:\nbare: %+v\nobs:  %+v", bare, res)
	}
}
