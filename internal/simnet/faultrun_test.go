package simnet

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

// Runtime fault engine tests: FaultPlan scheduling, the fault-aware run
// loop, tracing under faults, and the degradation sweep.

func faultNet(t *testing.T, d, D int) (*Network, *Network) {
	t.Helper()
	g := debruijn.DeBruijn(d, D)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return nw, nw
}

func TestFaultPlanCompileErrors(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	cases := []*FaultPlan{
		NewFaultPlan().LinkDown(0, 0, -1, 0),
		NewFaultPlan().LinkDown(0, 0, 0, 2),
		NewFaultPlan().LinkDown(0, 0, g.N(), 0),
		NewFaultPlan().NodeDown(0, 0, -1),
		NewFaultPlan().NodeDown(0, 0, g.N()),
		NewFaultPlan().LinkDown(-1, 0, 0, 0),
		NewFaultPlan().LensDown(0, 0, 7, []Arc{{Tail: 0, Index: 9}}),
	}
	for i, plan := range cases {
		if _, err := plan.Compile(g); err == nil {
			t.Errorf("case %d: bad plan compiled", i)
		}
	}
	if _, err := (*FaultPlan)(nil).Compile(g); err != nil {
		t.Errorf("nil plan: %v", err)
	}
}

func TestFaultStateSpans(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	// Node 1's out-arcs head to 2 and 3, untouched by a fault on node 6
	// (whose in-arcs come from 3 and 7).
	plan := NewFaultPlan().
		LinkDown(5, 10, 1, 0). // transient: down cycles [5, 15)
		LinkDown(20, 0, 1, 1). // permanent from 20
		NodeDown(2, 3, 6)
	st, err := plan.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	check := func(cycle int, wantA0, wantA1, wantNode bool, wantVersion int) {
		t.Helper()
		st.Advance(cycle)
		if got := st.ArcDown(1, 0); got != wantA0 {
			t.Errorf("cycle %d: ArcDown(1,0) = %v", cycle, got)
		}
		if got := st.ArcDown(1, 1); got != wantA1 {
			t.Errorf("cycle %d: ArcDown(1,1) = %v", cycle, got)
		}
		if got := st.NodeDown(6); got != wantNode {
			t.Errorf("cycle %d: NodeDown(6) = %v", cycle, got)
		}
		if got := st.PermanentVersion(); got != wantVersion {
			t.Errorf("cycle %d: PermanentVersion = %d, want %d", cycle, got, wantVersion)
		}
	}
	check(0, false, false, false, 0)
	check(4, false, false, true, 0)  // node fault spans [2, 5)
	check(5, true, false, false, 0)  // transient link starts
	check(14, true, false, false, 0) // last down cycle
	check(15, false, false, false, 0)
	check(20, false, true, false, 1) // permanent fault active
	check(1000, false, true, false, 1)
	if st.ArcPermanentlyDown(1, 0) {
		t.Error("transient fault reported permanent")
	}
	if !st.ArcPermanentlyDown(1, 1) {
		t.Error("permanent fault not reported")
	}
	if (*FaultState)(nil).ArcDown(0, 0) || (*FaultState)(nil).NodeDown(0) {
		t.Error("nil state reports faults")
	}
	if !(*FaultState)(nil).Empty() {
		t.Error("nil state not empty")
	}
}

func TestRunWithFaultsMatchesFaultFree(t *testing.T) {
	// With a nil plan the fault engine is just a (departure-time-routed)
	// simulator: everything delivers with the same hop counts as Run.
	nw, _ := faultNet(t, 2, 4)
	pkts := UniformRandom(16, 300, 7)
	base := nw.Run(pkts)
	res, err := nw.RunWithFaults(pkts, nil, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != base.Delivered || res.Dropped != 0 || res.Stuck != 0 {
		t.Fatalf("fault-free engine run diverged: %v vs %v", res, base)
	}
	if res.Reroutes != 0 || res.Retries != 0 {
		t.Fatalf("fault-free run rerouted: %v", res)
	}
	if res.TotalHops != base.TotalHops {
		t.Errorf("hops diverged: %d vs %d", res.TotalHops, base.TotalHops)
	}
}

func TestPermanentLinkFaultRerouted(t *testing.T) {
	// B(3,3): λ = 2, so one dead link costs nothing but a detour.
	nw, _ := faultNet(t, 3, 3)
	plan := NewFaultPlan().LinkDown(0, 0, 5, 1)
	res, err := nw.RunWithFaults(UniformRandom(27, 500, 80), plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 || res.Delivered != 500 || res.Stuck != 0 {
		t.Fatalf("single link fault lost traffic: %v", res)
	}
	if res.MaxHops > 3+2 {
		t.Errorf("max hops %d after single link fault", res.MaxHops)
	}
	if res.Reroutes == 0 {
		t.Error("no reroutes recorded around a dead link on the primary table")
	}
}

func TestTransientFaultHealsAndRetries(t *testing.T) {
	// Down *all* out-arcs of node 5 for a while: packets waiting there
	// must back off, then proceed when the lens clears. λ-redundancy can't
	// help (every out-arc is dead), so this exercises the retry path.
	nw, _ := faultNet(t, 3, 3)
	g := debruijn.DeBruijn(3, 3)
	plan := NewFaultPlan()
	for k := 0; k < g.OutDegree(5); k++ {
		plan.LinkDown(0, 40, 5, k)
	}
	var pkts []Packet
	for i := 0; i < 20; i++ {
		pkts = append(pkts, Packet{ID: i, Src: 5, Dst: (i*7)%27 + (i % 2), Release: 0})
	}
	res, err := nw.RunWithFaults(pkts, plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != len(pkts) || res.Dropped != 0 {
		t.Fatalf("transient blackout dropped traffic: %v", res)
	}
	if res.Retries == 0 {
		t.Error("no retries during a 40-cycle blackout of the source")
	}
	// Delivery must wait for the heal.
	if res.Cycles < 40 {
		t.Errorf("delivered by cycle %d during a blackout until 40", res.Cycles)
	}
}

func TestNodeFaultDropsInFlight(t *testing.T) {
	// A node that dies mid-run eats packets in flight to it; they are
	// dropped with accounting, not lost.
	nw, _ := faultNet(t, 3, 3)
	plan := NewFaultPlan().NodeDown(0, 0, 5)
	pkts := UniformRandom(27, 400, 9)
	res, err := nw.RunWithFaults(pkts, plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped != len(pkts) || res.Stuck != 0 {
		t.Fatalf("packets unaccounted: %v", res)
	}
	if res.Dropped != res.DroppedFault+res.DroppedTTL+res.DroppedNoRoute {
		t.Fatalf("drop buckets don't sum: %v", res)
	}
	// Every packet not sourced at or destined to 5 must still deliver:
	// B(3,3) minus a vertex stays strongly connected (κ = 2).
	for _, p := range res.Packets {
		if p.Src != 5 && p.Dst != 5 && p.Delivered < 0 {
			t.Errorf("packet %d (%d→%d) avoided node 5 but was lost", p.ID, p.Src, p.Dst)
		}
	}
}

func TestTTLDropsLoopingPackets(t *testing.T) {
	nw, _ := faultNet(t, 2, 3)
	cfg := DefaultFaultConfig()
	cfg.TTL = 1
	pkts := []Packet{{ID: 0, Src: 0, Dst: 7, Release: 0}} // distance 3 > TTL
	res, err := nw.RunWithFaults(pkts, NewFaultPlan(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedTTL != 1 || res.Delivered != 0 {
		t.Fatalf("TTL=1 run: %v", res)
	}
}

func TestTotalBlackoutTerminatesCleanly(t *testing.T) {
	// 100% fault rate: every arc permanently dead from cycle 0. Every
	// packet must drop via the retry ladder — no deadlock, nothing stuck.
	g := debruijn.DeBruijn(2, 4)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan()
	for u := 0; u < g.N(); u++ {
		for k := 0; k < g.OutDegree(u); k++ {
			plan.LinkDown(0, 0, u, k)
		}
	}
	pkts := UniformRandom(g.N(), 200, 11)
	moving := 0
	for _, p := range pkts {
		if p.Src != p.Dst {
			moving++
		}
	}
	res, err := nw.RunWithFaults(pkts, plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stuck != 0 {
		t.Fatalf("blackout run left %d packets stuck", res.Stuck)
	}
	if res.DroppedNoRoute != moving {
		t.Fatalf("blackout dropped %d no-route, want %d: %v", res.DroppedNoRoute, moving, res)
	}
	if res.DeliveredFraction() > float64(len(pkts)-moving)/float64(len(pkts)) {
		t.Errorf("blackout delivered fraction %v", res.DeliveredFraction())
	}
	// The zero-delivered statistics must be rendered cleanly (no NaN).
	if s := res.String(); strings.Contains(s, "NaN") {
		t.Errorf("NaN in zero-delivery stats: %s", s)
	}
	if res.MeanLatency != 0 && moving == len(pkts) {
		t.Errorf("mean latency %v with nothing delivered", res.MeanLatency)
	}
}

func TestFaultRouterNeverForwardsOntoDownedArc(t *testing.T) {
	// Property: whatever the fault schedule and cycle, NextArc never
	// returns a downed arc (and only valid positions).
	g := debruijn.DeBruijn(3, 3)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		plan := NewFaultPlan()
		faults := 1 + rng.Intn(40)
		for f := 0; f < faults; f++ {
			u := rng.Intn(g.N())
			k := rng.Intn(g.OutDegree(u))
			start := rng.Intn(30)
			dur := rng.Intn(25) // 0: permanent
			switch rng.Intn(3) {
			case 0:
				plan.LinkDown(start, dur, u, k)
			case 1:
				plan.NodeDown(start, dur, u)
			case 2:
				plan.LensDown(start, dur, f, []Arc{{Tail: u, Index: k}})
			}
		}
		state, err := plan.Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		router := NewFaultAwareRouter(g, NewTableRouter(g), state)
		for cycle := 0; cycle < 60; cycle += 7 {
			state.Advance(cycle)
			for at := 0; at < g.N(); at++ {
				for dst := 0; dst < g.N(); dst++ {
					arc := router.NextArc(at, dst)
					if at == dst {
						if arc != -1 {
							t.Fatalf("NextArc(%d,%d) = %d at destination", at, dst, arc)
						}
						continue
					}
					if arc == -1 {
						continue
					}
					if arc < 0 || arc >= g.OutDegree(at) {
						t.Fatalf("NextArc(%d,%d) = %d out of range", at, dst, arc)
					}
					if state.ArcDown(at, arc) {
						t.Fatalf("trial %d cycle %d: NextArc(%d,%d) = %d is DOWN",
							trial, cycle, at, dst, arc)
					}
				}
			}
		}
	}
}

func TestTracedRunWithFaultsVerifies(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan().
		LinkDown(0, 0, 5, 1).  // permanent link
		NodeDown(3, 15, 20).   // transient node
		LinkDown(2, 6, 11, 0). // transient link
		NodeDown(0, 0, 7)      // permanent node
	pkts := UniformRandom(27, 300, 13)
	res, events, err := nw.TracedRunWithFaults(pkts, plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyTrace(g, pkts, events); err != nil {
		t.Fatalf("trace under faults rejected: %v", err)
	}
	if res.Delivered+res.Dropped+res.Stuck != len(pkts) {
		t.Fatalf("unaccounted packets: %v", res)
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if res.Reroutes > 0 && kinds[EventReroute] != res.Reroutes {
		t.Errorf("trace has %d reroute events, result says %d", kinds[EventReroute], res.Reroutes)
	}
	if res.Dropped > 0 && kinds[EventDrop] != res.Dropped {
		t.Errorf("trace has %d drop events, result says %d", kinds[EventDrop], res.Dropped)
	}
}

func TestVerifyTraceRejectsEventsAfterDrop(t *testing.T) {
	g := debruijn.DeBruijn(2, 2)
	pkts := []Packet{{ID: 0, Src: 0, Dst: 3}}
	events := []Event{
		{Cycle: 0, Kind: EventInject, Packet: 0, Node: 0, Peer: -1},
		{Cycle: 1, Kind: EventDrop, Packet: 0, Node: 0, Peer: -1},
		{Cycle: 2, Kind: EventDepart, Packet: 0, Node: 0, Peer: 1},
	}
	if err := VerifyTrace(g, pkts, events); err == nil {
		t.Error("movement after drop accepted")
	}
	// Drop at the wrong location.
	events = []Event{
		{Cycle: 0, Kind: EventInject, Packet: 0, Node: 0, Peer: -1},
		{Cycle: 1, Kind: EventDrop, Packet: 0, Node: 2, Peer: -1},
	}
	if err := VerifyTrace(g, pkts, events); err == nil {
		t.Error("drop away from the packet's position accepted")
	}
}

func TestDegradationSweep(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	rates := []float64{0, 0.05, 0.3, 1}
	points, err := DegradationSweep(g, NewTableRouter(g), rates, 300, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(rates) {
		t.Fatalf("got %d points for %d rates", len(points), len(rates))
	}
	if points[0].DeliveredFraction != 1 {
		t.Errorf("fault-free point delivered %v, want 1", points[0].DeliveredFraction)
	}
	if points[0].Reroutes != 0 {
		t.Errorf("fault-free point rerouted %d times", points[0].Reroutes)
	}
	last := points[len(points)-1]
	if last.ArcsDown != g.M() {
		t.Errorf("rate-1 point downed %d arcs, want all %d", last.ArcsDown, g.M())
	}
	// Self-addressed packets still "deliver" at rate 1; everything that
	// must move is dropped.
	if last.Delivered+last.Dropped != last.Offered {
		t.Errorf("rate-1 point unaccounted: %+v", last)
	}
	if last.DeliveredFraction > 0.1 {
		t.Errorf("rate-1 point delivered fraction %v", last.DeliveredFraction)
	}
	for i, p := range points {
		if p.DeliveredFraction < 0 || p.DeliveredFraction > 1 {
			t.Errorf("point %d fraction %v out of [0,1]", i, p.DeliveredFraction)
		}
		if s := p.String(); strings.Contains(s, "NaN") {
			t.Errorf("point %d renders NaN: %s", i, s)
		}
	}
	// Determinism across worker counts.
	again, err := DegradationSweep(g, NewTableRouter(g), rates, 300, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i] != again[i] {
			t.Errorf("point %d differs across worker counts: %+v vs %+v", i, points[i], again[i])
		}
	}
}

func TestDegradationSweepErrors(t *testing.T) {
	g := debruijn.DeBruijn(2, 2)
	if _, err := DegradationSweep(g, NewTableRouter(g), []float64{0.5}, 0, 1, 1); err == nil {
		t.Error("zero packets accepted")
	}
	if _, err := DegradationSweep(g, NewTableRouter(g), []float64{-0.1}, 10, 1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := DegradationSweep(g, NewTableRouter(g), []float64{1.5}, 10, 1, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestLensFaultPartialService(t *testing.T) {
	// A permanent lens-style fault killing all out-arcs of a node block.
	// The silenced nodes become sinks, so the correlated fault partitions
	// the pair space: pairs still connected in the residual digraph (the
	// serviceable pairs) must keep 100% delivery, the rest must drop with
	// accounting — never hang.
	g := debruijn.DeBruijn(3, 3)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	shadow := map[int]bool{3: true, 4: true, 5: true}
	var arcs []Arc
	residual := digraph.New(g.N())
	for u := 0; u < g.N(); u++ {
		if shadow[u] {
			for k := 0; k < g.OutDegree(u); k++ {
				arcs = append(arcs, Arc{Tail: u, Index: k})
			}
			continue
		}
		for _, v := range g.Out(u) {
			residual.AddArc(u, v)
		}
	}
	reach := make([][]int, g.N())
	for u := 0; u < g.N(); u++ {
		reach[u] = residual.BFSFrom(u)
	}

	plan := NewFaultPlan().LensDown(0, 0, 1, arcs)
	pkts := UniformRandom(27, 600, 21)
	res, err := nw.RunWithFaults(pkts, plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stuck != 0 {
		t.Fatalf("lens fault left packets stuck: %v", res)
	}
	for _, p := range res.Packets {
		serviceable := reach[p.Src][p.Dst] != digraph.Unreachable
		if serviceable && p.Delivered < 0 {
			t.Errorf("serviceable packet %d (%d→%d) lost", p.ID, p.Src, p.Dst)
		}
		if !serviceable && p.Delivered >= 0 {
			t.Errorf("packet %d (%d→%d) delivered across a partition", p.ID, p.Src, p.Dst)
		}
	}
}
