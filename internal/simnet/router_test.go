package simnet

import (
	"testing"

	"repro/internal/debruijn"
)

// routeIntsNextArc is the historical DeBruijnRouter.NextArc: materialize
// the whole congruence-form route with debruijn.RouteInts and recover the
// first letter from the first hop. It allocated a path slice per routing
// decision; the arithmetic NextArc must agree with it everywhere.
func routeIntsNextArc(d, D, n, at, dst int) int {
	if at == dst {
		return -1
	}
	path := debruijn.RouteInts(d, D, at, dst)
	next := path[1]
	alpha := (next - d*at) % n
	if alpha < 0 {
		alpha += n
	}
	return alpha % d
}

// TestDeBruijnNextArcMatchesRouteInts pins the arithmetic NextArc to the
// RouteInts-derived decision on every (at, dst) pair of several B(d, D).
func TestDeBruijnNextArcMatchesRouteInts(t *testing.T) {
	for _, tc := range []struct{ d, D int }{{2, 3}, {2, 6}, {3, 4}, {4, 3}, {5, 2}} {
		r := NewDeBruijnRouter(tc.d, tc.D)
		n := r.n
		for at := 0; at < n; at++ {
			for dst := 0; dst < n; dst++ {
				want := routeIntsNextArc(tc.d, tc.D, n, at, dst)
				if got := r.NextArc(at, dst); got != want {
					t.Fatalf("B(%d,%d) NextArc(%d,%d) = %d, RouteInts says %d",
						tc.d, tc.D, at, dst, got, want)
				}
			}
		}
	}
}

// TestDeBruijnNextArcFollowsShortestPaths walks every pair to its
// destination through repeated NextArc decisions and checks the walk
// length equals the true shortest-path distance.
func TestDeBruijnNextArcFollowsShortestPaths(t *testing.T) {
	for _, tc := range []struct{ d, D int }{{2, 4}, {3, 3}} {
		g := debruijn.DeBruijn(tc.d, tc.D)
		r := NewDeBruijnRouter(tc.d, tc.D)
		dist := g.DistanceSlab()
		n := g.N()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				at, hops := src, 0
				for at != dst {
					arc := r.NextArc(at, dst)
					if arc < 0 {
						t.Fatalf("B(%d,%d): no route %d->%d", tc.d, tc.D, src, dst)
					}
					at = g.Out(at)[arc]
					hops++
					if hops > tc.D {
						t.Fatalf("B(%d,%d): %d->%d exceeded diameter %d", tc.d, tc.D, src, dst, tc.D)
					}
				}
				if want := int(dist[src*n+dst]); hops != want {
					t.Fatalf("B(%d,%d): %d->%d took %d hops, distance %d", tc.d, tc.D, src, dst, hops, want)
				}
			}
		}
	}
}

// TestDeBruijnNextArcAllocFree proves the hot-path routing decision
// allocates nothing — the bug this PR fixes had RouteInts allocating a
// path slice on every decision of the run loop.
func TestDeBruijnNextArcAllocFree(t *testing.T) {
	r := NewDeBruijnRouter(3, 7)
	n := r.n
	sink := 0
	allocs := testing.AllocsPerRun(1000, func() {
		sink += r.NextArc(sink%n, (sink*2617+1)%n)
	})
	if allocs != 0 {
		t.Fatalf("NextArc allocates %.1f times per call, want 0", allocs)
	}
}

// BenchmarkDeBruijnNextArc measures one routing decision on B(3,7);
// must report 0 allocs/op.
func BenchmarkDeBruijnNextArc(b *testing.B) {
	r := NewDeBruijnRouter(3, 7)
	n := r.n
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += r.NextArc(i%n, (i*2617+1)%n)
	}
	_ = sink
}

// TestDeBruijnRouterMatchesTableRouter is the catalog-wide differential
// test: on B(2,6), B(3,4) and B(3,5), route the complete exchange through
// both the table-free DeBruijnRouter and the shortest-path TableRouter
// under RunOpts and require identical per-packet hop counts and delivered
// sets. De Bruijn shortest paths are not unique, so the routes may
// differ — but both routers claim shortest-path routing, so every packet
// must be delivered in exactly distance(src, dst) hops by both.
func TestDeBruijnRouterMatchesTableRouter(t *testing.T) {
	for _, tc := range []struct{ d, D int }{{2, 6}, {3, 4}, {3, 5}} {
		g := debruijn.DeBruijn(tc.d, tc.D)
		nwWord, err := New(g, NewDeBruijnRouter(tc.d, tc.D), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		nwTable, err := New(g, NewTableRouter(g), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		repWord, err := nwWord.RunOpts(AllToAllLoad())
		if err != nil {
			t.Fatal(err)
		}
		repTable, err := nwTable.RunOpts(AllToAllLoad())
		if err != nil {
			t.Fatal(err)
		}
		n := g.N()
		if repWord.Delivered != n*(n-1) || repTable.Delivered != n*(n-1) {
			t.Fatalf("B(%d,%d): delivered %d (word) / %d (table), want %d",
				tc.d, tc.D, repWord.Delivered, repTable.Delivered, n*(n-1))
		}
		pw, pt := repWord.Packets, repTable.Packets
		if len(pw) != len(pt) {
			t.Fatalf("B(%d,%d): packet counts differ: %d vs %d", tc.d, tc.D, len(pw), len(pt))
		}
		for i := range pw {
			if pw[i].Src != pt[i].Src || pw[i].Dst != pt[i].Dst {
				t.Fatalf("B(%d,%d): packet %d endpoints differ", tc.d, tc.D, i)
			}
			if (pw[i].Delivered >= 0) != (pt[i].Delivered >= 0) {
				t.Fatalf("B(%d,%d): packet %d (%d->%d) delivered by one router only (word del=%d, table del=%d)",
					tc.d, tc.D, i, pw[i].Src, pw[i].Dst, pw[i].Delivered, pt[i].Delivered)
			}
			if pw[i].Hops != pt[i].Hops {
				t.Fatalf("B(%d,%d): packet %d (%d->%d) hop counts differ: word %d, table %d",
					tc.d, tc.D, i, pw[i].Src, pw[i].Dst, pw[i].Hops, pt[i].Hops)
			}
		}
	}
}

// TestShiftNextArcMatchesTableEverywhere is the per-pair differential
// for the table-free lean path: on every B(d, D) in the catalog the
// closed-form shift decision must equal the slab gather for every
// (at, dst) pair, so replacing the gather with DeBruijnRouter.NextArc in
// the fused kernel cannot change a single routing decision. (The repo's
// reverse-BFS table breaks shortest-path ties by discovery order, which
// on congruence-form de Bruijn graphs is exactly the maximal-overlap
// shift rule.)
func TestShiftNextArcMatchesTableEverywhere(t *testing.T) {
	for _, tc := range []struct{ d, D int }{
		{2, 3}, {2, 6}, {2, 8}, {2, 10},
		{3, 3}, {3, 4}, {3, 5},
		{4, 3}, {4, 4},
		{5, 2}, {6, 2},
	} {
		g := debruijn.DeBruijn(tc.d, tc.D)
		tab := NewTableRouter(g)
		shf := NewDeBruijnRouter(tc.d, tc.D)
		n := g.N()
		for at := 0; at < n; at++ {
			for dst := 0; dst < n; dst++ {
				if at == dst {
					continue
				}
				if a, b := tab.NextArc(at, dst), shf.NextArc(at, dst); a != b {
					t.Fatalf("B(%d,%d): NextArc(%d, %d) = %d (table) vs %d (shift)",
						tc.d, tc.D, at, dst, a, b)
				}
			}
		}
	}
}
