package simnet

import (
	"reflect"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/obs"
)

// TestInstrumentedRunMatchesUninstrumented pins the central promise of
// the observability layer: attaching a Recorder changes what is
// *recorded*, never what is *simulated*.
func TestInstrumentedRunMatchesUninstrumented(t *testing.T) {
	g := debruijn.DeBruijn(2, 6)
	pkts := UniformRandom(g.N(), 800, 17)

	plain, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bare := plain.Run(pkts)

	instr, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	instr.Observe(rec)
	observed := instr.Run(pkts)

	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("instrumented run diverged:\nbare:     %+v\nobserved: %+v", bare, observed)
	}
}

// TestArcTraversalsSumToHops: each recorded arc traversal is one packet
// hop, so the slab total, the counter, the hops histogram sum and the
// per-packet hop counts must all agree.
func TestArcTraversalsSumToHops(t *testing.T) {
	g := debruijn.DeBruijn(3, 4)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	nw.Observe(rec)
	res := nw.Run(Permutation(g.N(), 3))

	var hops int64
	for _, p := range res.Packets {
		hops += int64(p.Hops)
	}
	var slab int64
	for _, v := range rec.ArcTraversals() {
		slab += v
	}
	snap := rec.Snapshot()
	if slab != hops {
		t.Errorf("arc slab total %d, packet hops %d", slab, hops)
	}
	if c := snap.Counters[obs.MetricArcTraversed]; c != hops {
		t.Errorf("%s = %d, packet hops %d", obs.MetricArcTraversed, c, hops)
	}
	if s := snap.Histograms[obs.MetricHistHops].Sum; s != hops {
		t.Errorf("hops histogram sum %d, packet hops %d", s, hops)
	}
	if d := snap.Counters[obs.MetricDelivered]; d != int64(res.Delivered) {
		t.Errorf("delivered counter %d, result %d", d, res.Delivered)
	}
	if len(rec.ArcTraversals()) != g.M() {
		t.Errorf("slab sized %d, digraph has %d arcs", len(rec.ArcTraversals()), g.M())
	}
}

// TestFaultRunRecorderMatchesResult cross-checks the fault engine's own
// drain accounting against the recorder's cause buckets.
func TestFaultRunRecorderMatchesResult(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	nw.Observe(rec)

	plan := NewFaultPlan()
	// Down a block of arcs permanently to force drops and reroutes.
	for k := 0; k < 2; k++ {
		plan.LinkDown(0, 0, 0, k)
		plan.LinkDown(0, 0, 1, k)
	}
	res, err := nw.RunWithFaults(UniformRandom(g.N(), 600, 3), plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.Dropped != 600 {
		t.Fatalf("drain invariant broken: %+v", res)
	}
	snap := rec.Snapshot()
	checks := map[string]int{
		obs.MetricDelivered:                               res.Delivered,
		obs.MetricDropped:                                 res.Dropped,
		obs.MetricDropPrefix + obs.DropTTL.String():       res.DroppedTTL,
		obs.MetricDropPrefix + obs.DropNoRoute.String():   res.DroppedNoRoute,
		obs.MetricDropPrefix + obs.DropFault.String():     res.DroppedFault,
		obs.MetricDropPrefix + obs.DropHorizon.String():   res.DroppedHorizon,
		obs.MetricDropPrefix + obs.DropStuck.String():     res.Stuck,
		obs.MetricDropPrefix + obs.DropQueueFull.String(): res.DroppedQueueFull,
		obs.MetricShed:     res.Shed,
		obs.MetricHolds:    res.Holds,
		obs.MetricReroutes: res.Reroutes,
		obs.MetricRetries:  res.Retries,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != int64(want) {
			t.Errorf("counter %s = %d, result says %d", name, got, want)
		}
	}
}

// TestRunOptsSubsumesWrappers: the functional-options entry point must
// reproduce each deprecated wrapper exactly.
func TestRunOptsSubsumesWrappers(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	mk := func() *Network {
		nw, err := New(g, NewTableRouter(g), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return nw
	}
	pkts := UniformRandom(g.N(), 300, 9)

	// Plain run.
	want := mk().Run(pkts)
	rep, err := mk().RunOpts(Fixed(pkts))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Result, want) {
		t.Errorf("RunOpts plain diverged from Run")
	}

	// Workload generation matches the generator called directly.
	rep2, err := mk().RunOpts(UniformLoad(300), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep2.Result, want) {
		t.Errorf("UniformLoad+WithSeed diverged from UniformRandom")
	}

	// Fault run.
	plan := NewFaultPlan()
	plan.LinkDown(0, 0, 0, 0)
	wantF, err := mk().RunWithFaults(pkts, plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	repF, err := mk().RunOpts(Fixed(pkts), WithFaults(plan))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repF.FaultResult, wantF) {
		t.Errorf("RunOpts(WithFaults) diverged from RunWithFaults")
	}
	if repF.Events != nil {
		t.Errorf("untraced run carries events")
	}

	// Traced fault run.
	wantR, wantEv, err := mk().TracedRunWithFaults(pkts, plan, DefaultFaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	repT, err := mk().RunOpts(Fixed(pkts), WithFaults(plan), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repT.FaultResult, wantR) || !reflect.DeepEqual(repT.Events, wantEv) {
		t.Errorf("RunOpts(WithFaults, WithTrace) diverged from TracedRunWithFaults")
	}

	// Traced fault-free run.
	wantP, wantPEv := mk().TracedRun(pkts)
	repP, err := mk().RunOpts(Fixed(pkts), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repP.Result, wantP) || !reflect.DeepEqual(repP.Events, wantPEv) {
		t.Errorf("RunOpts(WithTrace) diverged from TracedRun")
	}

	// Nil workload is an error, not a panic.
	if _, err := mk().RunOpts(nil); err == nil {
		t.Error("RunOpts(nil) accepted")
	}
}

// TestRunOptsWithRecorderOverride: WithRecorder records the run without
// touching the network's attached recorder.
func TestRunOptsWithRecorderOverride(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	attached := obs.NewRecorder(nil)
	nw.Observe(attached)
	override := obs.NewRecorder(nil)
	if _, err := nw.RunOpts(PermutationLoad(), WithSeed(2), WithRecorder(override)); err != nil {
		t.Fatal(err)
	}
	if got := attached.Snapshot().Counters[obs.MetricDelivered]; got != 0 {
		t.Errorf("attached recorder saw %d deliveries during an overridden run", got)
	}
	if got := override.Snapshot().Counters[obs.MetricDelivered]; got != int64(g.N()) {
		t.Errorf("override recorder saw %d deliveries, want %d", got, g.N())
	}
	// WithRecorder(nil) forces an uninstrumented run.
	if _, err := nw.RunOpts(PermutationLoad(), WithSeed(2), WithRecorder(nil)); err != nil {
		t.Fatal(err)
	}
	if got := attached.Snapshot().Counters[obs.MetricDelivered]; got != 0 {
		t.Errorf("attached recorder saw %d deliveries during a nil-recorder run", got)
	}
}

// TestSweepSharedRecorder runs a DegradationSweep with several workers
// sharing one recorder — under `go test -race` this is the concurrency
// certification of the obs hot path.
func TestSweepSharedRecorder(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(nil)
	nw.Observe(rec)
	rates := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}
	points, err := nw.DegradationSweep(rates, 150, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantDelivered, wantDropped := 0, 0
	for _, p := range points {
		wantDelivered += p.Delivered
		wantDropped += p.Dropped
	}
	snap := rec.Snapshot()
	if got := snap.Counters[obs.MetricDelivered]; got != int64(wantDelivered) {
		t.Errorf("delivered counter %d, sweep points sum %d", got, wantDelivered)
	}
	if got := snap.Counters[obs.MetricDropped]; got != int64(wantDropped) {
		t.Errorf("dropped counter %d, sweep points sum %d", got, wantDropped)
	}
	if err := validateSnapshot(snap); err != nil {
		t.Errorf("sweep snapshot invalid: %v", err)
	}
}

func validateSnapshot(m obs.RunMetrics) error {
	data, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	return obs.ValidateRunMetrics(data)
}

// TestObservedRouterBuild records construction cost without changing the
// router.
func TestObservedRouterBuild(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	rec := obs.NewRecorder(nil)
	tr := NewTableRouterObserved(g, rec)
	snap := rec.Snapshot()
	if snap.Gauges[obs.MetricRouterBytes] != int64(tr.Footprint()) {
		t.Errorf("router_slab_bytes %d, footprint %d", snap.Gauges[obs.MetricRouterBytes], tr.Footprint())
	}
	if snap.Gauges[obs.MetricRouterNS] <= 0 {
		t.Errorf("router_build_ns = %d", snap.Gauges[obs.MetricRouterNS])
	}
	plain := NewTableRouter(g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u != v && tr.NextArc(u, v) != plain.NextArc(u, v) {
				t.Fatalf("observed router diverges at (%d,%d)", u, v)
			}
		}
	}
}
