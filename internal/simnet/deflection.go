package simnet

import (
	"fmt"

	"repro/internal/digraph"
	"repro/internal/obs"
)

// Deflection (hot-potato) routing: the natural regime for all-optical
// networks, where packets cannot be buffered — every packet in a node
// must leave on some output every cycle, and contention is resolved by
// deflecting the loser onto a free (possibly wrong) output. De Bruijn
// digraphs suit deflection well because every output leads somewhere
// useful; this simulator quantifies the deflection penalty against
// store-and-forward on the same topology.
//
// Model: synchronous cycles; each node has d inputs and d outputs (the
// digraph must be d-regular). At most one new packet may be injected per
// node per cycle, and injection is only possible when an output remains
// free after the transiting packets are assigned. Packets reaching their
// destination are absorbed before assignment.

// DeflectionResult extends the basic statistics with deflection counts.
// Like FaultResult, the accounting drains completely: Delivered +
// Dropped equals Offered on every run, including one cut short by the
// cycle limit, with Dropped broken into cause buckets.
type DeflectionResult struct {
	Offered     int
	Delivered   int
	Dropped     int // Stuck + DroppedHorizon + DroppedQueueFull
	Cycles      int
	TotalHops   int
	MaxHops     int
	Deflections int // hops not on a shortest path
	MeanLatency float64
	MeanHops    float64
	// Stuck counts packets in flight when the cycle limit ran out (0 on
	// any completed run).
	Stuck int
	// DroppedHorizon counts packets whose Release lay beyond the cycle
	// limit: never injected, dropped at their source when the run ends.
	DroppedHorizon int
	// DroppedQueueFull counts release-eligible packets still waiting for
	// injection capacity when the cycle limit ran out: refused entry by
	// the full node, never in flight — a distinct cause from Stuck so the
	// per-cause buckets stay disjoint.
	DroppedQueueFull int
	Packets          []Packet
}

// String renders the headline numbers.
func (r DeflectionResult) String() string {
	return fmt.Sprintf("delivered=%d dropped=%d cycles=%d meanLatency=%.2f meanHops=%.2f maxHops=%d deflections=%d",
		r.Delivered, r.Dropped, r.Cycles, r.MeanLatency, r.MeanHops, r.MaxHops, r.Deflections)
}

// DeliveredFraction returns Delivered over Offered, 0 when nothing was
// offered (never NaN).
func (r DeflectionResult) DeliveredFraction() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Offered)
}

// DeflectionNetwork simulates hot-potato routing on a d-regular digraph.
type DeflectionNetwork struct {
	g     *digraph.Digraph
	d     int
	dist  [][]int // dist[u][v]: shortest distance, for output ranking
	limit int
	rec   *obs.Recorder // nil: uninstrumented
}

// NewDeflection builds the simulator. The digraph must be d-out-regular
// and strongly connected.
func NewDeflection(g *digraph.Digraph, d int) (*DeflectionNetwork, error) {
	if !g.IsOutRegular(d) {
		return nil, fmt.Errorf("simnet: digraph is not %d-out-regular", d)
	}
	if !g.IsStronglyConnected() {
		return nil, fmt.Errorf("simnet: deflection needs strong connectivity")
	}
	n := g.N()
	dist := make([][]int, n)
	for u := 0; u < n; u++ {
		dist[u] = g.BFSFrom(u)
	}
	return &DeflectionNetwork{g: g, d: d, dist: dist, limit: 64 * n}, nil
}

// Observe attaches a metrics recorder: runs record per-arc traversals
// (flat index u*d + k on the d-regular digraph), deflections, latency
// and hop histograms. Passing nil detaches.
func (dn *DeflectionNetwork) Observe(rec *obs.Recorder) {
	rec.SizeArcs(dn.g.N() * dn.d)
	dn.rec = rec
}

// deflectionRun is the mutable state of one run, threaded through step.
// next and taken are per-cycle scratch allocated once in Run and reused
// every step; their append growth amortizes to zero in steady state.
type deflectionRun struct {
	pkts      []Packet
	at        [][]int // packets currently held at each node (≤ d)
	pendingAt [][]int // injected but not yet admitted
	next      [][]int // next cycle's holdings; swapped with at each step
	taken     []bool  // per-node output-assignment marks, d entries
	remaining int
	res       *DeflectionResult
}

func (st *deflectionRun) deliver(i, cycle int, rec *obs.Recorder) {
	st.pkts[i].Delivered = cycle
	st.res.Delivered++
	st.remaining--
	if cycle > st.res.Cycles {
		st.res.Cycles = cycle
	}
	if rec != nil {
		rec.Deliver(cycle-st.pkts[i].Release, st.pkts[i].Hops)
	}
}

// step advances the simulation one cycle: absorb arrivals, inject where
// capacity allows, then assign every held packet an output (deflecting
// losers). Recording sites are rec != nil guarded.
//
//lint:hotpath
func (dn *DeflectionNetwork) step(cycle int, st *deflectionRun, rec *obs.Recorder) {
	n := dn.g.N()
	pkts := st.pkts

	// Absorb arrivals.
	for u := 0; u < n; u++ {
		keep := st.at[u][:0]
		for _, i := range st.at[u] {
			if pkts[i].Dst == u {
				st.deliver(i, cycle, rec)
			} else {
				keep = append(keep, i)
			}
		}
		st.at[u] = keep
	}
	// Inject where capacity allows (transiting packets have priority
	// for outputs; a node holds at most d packets after injection).
	for u := 0; u < n; u++ {
		for len(st.pendingAt[u]) > 0 && len(st.at[u]) < dn.d {
			i := st.pendingAt[u][0]
			if pkts[i].Release > cycle {
				break // queued by release order; later packets wait
			}
			st.pendingAt[u] = st.pendingAt[u][1:]
			st.at[u] = append(st.at[u], i)
		}
	}
	// Assign outputs: oldest packet first (deadline monotone keeps
	// worst-case latency bounded), each takes its best free output.
	next := st.next
	for u := range next {
		next[u] = next[u][:0]
	}
	for u := 0; u < n; u++ {
		if len(st.at[u]) == 0 {
			continue
		}
		group := st.at[u]
		sortByReleaseID(group, pkts)
		outs := dn.g.Out(u)
		taken := st.taken[:len(outs)]
		for k := range taken {
			taken[k] = false
		}
		for _, i := range group {
			// Rank outputs by resulting distance to destination.
			best, bestDist := -1, 0
			for k, v := range outs {
				if taken[k] {
					continue
				}
				dv := dn.dist[v][pkts[i].Dst]
				if best == -1 || dv < bestDist {
					best, bestDist = k, dv
				}
			}
			taken[best] = true
			v := outs[best]
			if dn.dist[v][pkts[i].Dst] >= dn.dist[u][pkts[i].Dst] {
				st.res.Deflections++
				if rec != nil {
					rec.Deflect()
				}
			}
			pkts[i].Hops++
			if rec != nil {
				rec.ArcTraverse(u*dn.d + best)
			}
			next[v] = append(next[v], i)
		}
	}
	st.at, st.next = next, st.at
}

// sortByReleaseID insertion-sorts packet indices by (Release, ID). A
// group holds at most d packets, and unlike sort.Slice this defines no
// closure, so the per-node assignment loop stays allocation-free.
func sortByReleaseID(group []int, pkts []Packet) {
	for i := 1; i < len(group); i++ {
		for j := i; j > 0; j-- {
			a, b := group[j-1], group[j]
			if pkts[a].Release < pkts[b].Release ||
				(pkts[a].Release == pkts[b].Release && pkts[a].ID <= pkts[b].ID) {
				break
			}
			group[j-1], group[j] = b, a
		}
	}
}

// Run simulates until all packets are delivered or the cycle limit hits.
// Packets with Src == Dst are delivered at injection. On a truncated
// run the survivors are drained into the Stuck and DroppedHorizon
// buckets, so Delivered + Dropped == Offered always holds.
func (dn *DeflectionNetwork) Run(packets []Packet) DeflectionResult {
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)
	n := dn.g.N()
	rec := dn.rec
	res := DeflectionResult{Offered: len(pkts)}

	st := &deflectionRun{
		pkts:      pkts,
		at:        make([][]int, n),
		pendingAt: make([][]int, n),
		next:      make([][]int, n),
		taken:     make([]bool, dn.d),
		res:       &res,
	}
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		st.pendingAt[pkts[i].Src] = append(st.pendingAt[pkts[i].Src], i)
		st.remaining++
	}

	var cycle int
	for cycle = 0; st.remaining > 0 && cycle <= dn.limit; cycle++ {
		dn.step(cycle, st, rec)
	}

	// Exit drain: the cycle limit hit with work outstanding. In-flight
	// packets are Stuck; pending packets split by cause — a release
	// beyond the limit was never injectable (horizon), while a
	// release-eligible packet was refused entry by its full node for the
	// whole run (queue full). The three buckets stay disjoint.
	if st.remaining > 0 {
		drop := func(i int, bucket *int, cause obs.DropCause) {
			*bucket++
			res.Dropped++
			st.remaining--
			if rec != nil {
				rec.Drop(cause)
			}
			_ = i
		}
		for u := 0; u < n; u++ {
			for _, i := range st.at[u] {
				drop(i, &res.Stuck, obs.DropStuck)
			}
			st.at[u] = nil
			for _, i := range st.pendingAt[u] {
				if pkts[i].Release >= cycle {
					drop(i, &res.DroppedHorizon, obs.DropHorizon)
				} else {
					drop(i, &res.DroppedQueueFull, obs.DropQueueFull)
				}
			}
			st.pendingAt[u] = nil
		}
		_ = st.remaining // zero by construction: every survivor was drained
	}

	// Aggregate.
	latency := 0
	for i := range pkts {
		if pkts[i].Delivered < 0 {
			continue
		}
		res.TotalHops += pkts[i].Hops
		if pkts[i].Hops > res.MaxHops {
			res.MaxHops = pkts[i].Hops
		}
		latency += pkts[i].Delivered - pkts[i].Release
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latency) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts
	return res
}
