package simnet

import (
	"fmt"
	"sort"

	"repro/internal/digraph"
)

// Deflection (hot-potato) routing: the natural regime for all-optical
// networks, where packets cannot be buffered — every packet in a node
// must leave on some output every cycle, and contention is resolved by
// deflecting the loser onto a free (possibly wrong) output. De Bruijn
// digraphs suit deflection well because every output leads somewhere
// useful; this simulator quantifies the deflection penalty against
// store-and-forward on the same topology.
//
// Model: synchronous cycles; each node has d inputs and d outputs (the
// digraph must be d-regular). At most one new packet may be injected per
// node per cycle, and injection is only possible when an output remains
// free after the transiting packets are assigned. Packets reaching their
// destination are absorbed before assignment.

// DeflectionResult extends the basic statistics with deflection counts.
type DeflectionResult struct {
	Delivered   int
	Cycles      int
	TotalHops   int
	MaxHops     int
	Deflections int // hops not on a shortest path
	MeanLatency float64
	MeanHops    float64
	Packets     []Packet
}

// String renders the headline numbers.
func (r DeflectionResult) String() string {
	return fmt.Sprintf("delivered=%d cycles=%d meanLatency=%.2f meanHops=%.2f maxHops=%d deflections=%d",
		r.Delivered, r.Cycles, r.MeanLatency, r.MeanHops, r.MaxHops, r.Deflections)
}

// DeflectionNetwork simulates hot-potato routing on a d-regular digraph.
type DeflectionNetwork struct {
	g     *digraph.Digraph
	d     int
	dist  [][]int // dist[u][v]: shortest distance, for output ranking
	limit int
}

// NewDeflection builds the simulator. The digraph must be d-out-regular
// and strongly connected.
func NewDeflection(g *digraph.Digraph, d int) (*DeflectionNetwork, error) {
	if !g.IsOutRegular(d) {
		return nil, fmt.Errorf("simnet: digraph is not %d-out-regular", d)
	}
	if !g.IsStronglyConnected() {
		return nil, fmt.Errorf("simnet: deflection needs strong connectivity")
	}
	n := g.N()
	dist := make([][]int, n)
	for u := 0; u < n; u++ {
		dist[u] = g.BFSFrom(u)
	}
	return &DeflectionNetwork{g: g, d: d, dist: dist, limit: 64 * n}, nil
}

// Run simulates until all packets are delivered or the cycle limit hits.
// Packets with Src == Dst are delivered at injection.
func (dn *DeflectionNetwork) Run(packets []Packet) DeflectionResult {
	pkts := make([]Packet, len(packets))
	copy(pkts, packets)
	n := dn.g.N()
	res := DeflectionResult{}

	// at[u] holds indices of packets currently at node u (≤ d transiting
	// plus injections happen via pending queue).
	at := make([][]int, n)
	pendingAt := make([][]int, n) // not yet injected
	remaining := 0
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		pendingAt[pkts[i].Src] = append(pendingAt[pkts[i].Src], i)
		remaining++
	}

	deliver := func(i, cycle int) {
		pkts[i].Delivered = cycle
		res.Delivered++
		remaining--
		if cycle > res.Cycles {
			res.Cycles = cycle
		}
	}

	for cycle := 0; remaining > 0 && cycle <= dn.limit; cycle++ {
		// Absorb arrivals.
		for u := 0; u < n; u++ {
			keep := at[u][:0]
			for _, i := range at[u] {
				if pkts[i].Dst == u {
					deliver(i, cycle)
				} else {
					keep = append(keep, i)
				}
			}
			at[u] = keep
		}
		// Inject where capacity allows (transiting packets have priority
		// for outputs; a node holds at most d packets after injection).
		for u := 0; u < n; u++ {
			for len(pendingAt[u]) > 0 && len(at[u]) < dn.d {
				i := pendingAt[u][0]
				if pkts[i].Release > cycle {
					break // queued by release order; later packets wait
				}
				pendingAt[u] = pendingAt[u][1:]
				at[u] = append(at[u], i)
			}
		}
		// Assign outputs: oldest packet first (deadline monotone keeps
		// worst-case latency bounded), each takes its best free output.
		next := make([][]int, n)
		for u := 0; u < n; u++ {
			if len(at[u]) == 0 {
				continue
			}
			group := at[u]
			sort.Slice(group, func(a, b int) bool {
				return pkts[group[a]].Release < pkts[group[b]].Release ||
					(pkts[group[a]].Release == pkts[group[b]].Release &&
						pkts[group[a]].ID < pkts[group[b]].ID)
			})
			outs := dn.g.Out(u)
			taken := make([]bool, len(outs))
			for _, i := range group {
				// Rank outputs by resulting distance to destination.
				best, bestDist := -1, 0
				for k, v := range outs {
					if taken[k] {
						continue
					}
					dv := dn.dist[v][pkts[i].Dst]
					if best == -1 || dv < bestDist {
						best, bestDist = k, dv
					}
				}
				taken[best] = true
				v := outs[best]
				if dn.dist[v][pkts[i].Dst] >= dn.dist[u][pkts[i].Dst] {
					res.Deflections++
				}
				pkts[i].Hops++
				next[v] = append(next[v], i)
			}
		}
		at = next
	}

	// Aggregate.
	latency := 0
	for i := range pkts {
		if pkts[i].Delivered < 0 {
			continue
		}
		res.TotalHops += pkts[i].Hops
		if pkts[i].Hops > res.MaxHops {
			res.MaxHops = pkts[i].Hops
		}
		latency += pkts[i].Delivered - pkts[i].Release
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latency) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts
	return res
}
