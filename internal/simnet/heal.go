package simnet

import (
	"fmt"
	"sort"

	"repro/internal/digraph"
	"repro/internal/obs"
)

// The self-healing run loop. RunWithFaults hands its router the
// compiled FaultState — an oracle no real network has. A SelfHealing
// session runs the same store-and-forward simulation with the oracle
// removed: the fault plan is consulted only as physical truth (does
// this transmission succeed? is this node alive?), never as routing
// input. Everything the control plane knows it learned the hard way:
//
//   - detect: a transmission onto a downed arc fails; the sender times
//     out (DetectLatency cycles), bumps a per-arc suspicion counter,
//     and after SuspectThreshold consecutive failures commits a
//     link-down event — local knowledge, at the tail only;
//   - disseminate: each committed event floods the network one
//     all-port round per cycle over the arcs that still work
//     (gossip.Flood), piggybacked on the cycle loop. Nodes at a stale
//     epoch keep routing into dead arcs and pay more timeouts;
//   - repair: a node at epoch e routes by the pristine slab patched
//     with the believed-down set of its epoch (TableRouter.Repair) —
//     an incremental patch per event, never a from-scratch rebuild;
//   - recover: tails probe their believed-down out-arcs every
//     ProbeInterval cycles; a probe that succeeds commits a link-up
//     event that floods the same way.
//
// A HealMonitor (the machine layer's lens circuit breaker) can
// additionally quarantine arc groups: quarantined arcs are refused at
// departure without a physical attempt, and half-open probe results are
// fed back to the monitor.
//
// The session outlives a single Run: the clock, the event log and the
// epoch slabs persist, so a second Run on the same session starts with
// everything the network already learned — the converged regime the
// claim tests compare against the omniscient router.

// HealMonitor observes per-arc transmission outcomes of a self-healing
// run and may quarantine arc groups (a circuit breaker). All calls are
// made from the run loop, single-threaded, with session-absolute
// cycles.
type HealMonitor interface {
	// ArcFailed reports a failed transmission attempt (NACK) on arc.
	ArcFailed(cycle int, arc Arc)
	// ArcOK reports a successful transmission on arc.
	ArcOK(cycle int, arc Arc)
	// Tick runs once per cycle before routing. Arcs in quarantine stop
	// carrying traffic until they appear in release; arcs in probe get
	// one half-open probe each, answered via ProbeResult.
	Tick(cycle int) (quarantine, release, probe []Arc)
	// ProbeResult answers a probe requested by Tick: ok reports whether
	// the arc is physically up.
	ProbeResult(cycle int, arc Arc, ok bool)
}

// HealConfig tunes a self-healing session. The zero value selects
// defaults. The embedded FaultConfig keeps its RunWithFaults meaning
// (hop latency, TTL, retry/backoff budget, cycle bound per Run).
type HealConfig struct {
	FaultConfig
	// DetectLatency is the timeout a sender pays for a failed
	// transmission attempt before the packet may try again — the stand-
	// in for a NACK round trip (0: 2).
	DetectLatency int
	// SuspectThreshold is how many failed attempts on an out-arc its
	// tail accumulates before committing a link-down event (0: 2).
	SuspectThreshold int
	// ProbeInterval is how often (in cycles) tails probe believed-down
	// out-arcs for recovery (0: 16).
	ProbeInterval int
	// Monitor, when non-nil, is consulted every cycle and may
	// quarantine arc groups (see HealMonitor).
	Monitor HealMonitor
}

func (c HealConfig) withHealDefaults(n, diameter int) HealConfig {
	c.FaultConfig = c.FaultConfig.withDefaults(n, diameter)
	if c.DetectLatency < 1 {
		c.DetectLatency = 2
	}
	if c.SuspectThreshold < 1 {
		c.SuspectThreshold = 2
	}
	if c.ProbeInterval < 1 {
		c.ProbeInterval = 16
	}
	return c
}

// HealResult extends FaultResult with the control-plane accounting of
// one Run. The FaultResult invariants hold unchanged: Delivered +
// Dropped == Offered on every run, including truncated ones.
type HealResult struct {
	FaultResult
	// Nacks counts failed transmission attempts (the detection signal).
	Nacks int
	// Detections counts link-down events committed by suspicion.
	Detections int
	// EventsCommitted counts all link-state events committed this Run,
	// down and recovery alike.
	EventsCommitted int
	// Repairs counts epoch slabs patched so far in the session.
	Repairs int
	// Probes counts recovery and half-open probes sent this Run.
	Probes int
	// FinalEpoch is the session's committed event count after the Run.
	FinalEpoch int
	// Converged reports whether every committed event has finished
	// flooding — all nodes hold the latest epoch.
	Converged bool
	// ConvergedCycle is the session cycle the last flood completed (0
	// when no event was ever committed, -1 while still spreading).
	ConvergedCycle int
}

// String renders the headline numbers.
func (r HealResult) String() string {
	return fmt.Sprintf("%v nacks=%d detections=%d events=%d repairs=%d probes=%d epoch=%d converged=%v@%d",
		r.FaultResult, r.Nacks, r.Detections, r.EventsCommitted, r.Repairs, r.Probes,
		r.FinalEpoch, r.Converged, r.ConvergedCycle)
}

// SelfHealing is a live self-healing session over a network and a fault
// plan. Create one with Network.SelfHeal, then call Run one or more
// times; the session clock, event log, suspicion counters and epoch
// slabs persist across Runs.
type SelfHealing struct {
	nw    *Network
	state *FaultState
	heal  *healState
	cfg   HealConfig
	clock int

	quarantined map[Arc]bool
}

// SelfHeal compiles the plan and opens a self-healing session. The
// plan is physical truth only — no routing decision ever reads it. If
// the network's router is not a *TableRouter, a pristine slab is built
// for the session (self-healing repairs table slabs).
func (nw *Network) SelfHeal(plan *FaultPlan, cfg HealConfig) (*SelfHealing, error) {
	state, err := plan.Compile(nw.g)
	if err != nil {
		return nil, err
	}
	base, ok := nw.router.(*TableRouter)
	if !ok {
		base = NewTableRouter(nw.g)
	}
	return &SelfHealing{
		nw:          nw,
		state:       state,
		heal:        newHealState(nw.g, base),
		cfg:         cfg.withHealDefaults(nw.g.N(), nw.diameter()),
		quarantined: map[Arc]bool{},
	}, nil
}

// Cycle returns the session clock: the first cycle the next Run will
// simulate.
func (s *SelfHealing) Cycle() int { return s.clock }

// Epoch returns the number of committed link-state events.
func (s *SelfHealing) Epoch() int { return len(s.heal.events) }

// Converged reports whether every committed event has finished
// flooding.
func (s *SelfHealing) Converged() bool { return s.heal.converged() }

// BelievedDown returns the arcs the latest epoch holds down, sorted.
func (s *SelfHealing) BelievedDown() []Arc { return s.heal.downSet(len(s.heal.events)) }

// Quarantined returns the currently quarantined arcs, sorted.
func (s *SelfHealing) Quarantined() []Arc {
	out := make([]Arc, 0, len(s.quarantined))
	for a := range s.quarantined {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tail != out[j].Tail {
			return out[i].Tail < out[j].Tail
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// Run simulates the workload under the session. Packet releases are
// relative to the session clock (a packet with Release 0 injects on the
// first cycle of this Run); Delivered cycles and latency aggregates are
// likewise Run-relative, while ConvergedCycle and monitor callbacks use
// session-absolute cycles. The fault plan's Start cycles are
// session-absolute.
func (s *SelfHealing) Run(packets []Packet) (HealResult, error) {
	nw, cfg, h := s.nw, s.cfg, s.heal
	n := nw.g.N()
	guardIndexInt32(len(packets), "packets")
	start := s.clock
	mon := cfg.Monitor
	rec := nw.rec

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = nw.defaultBudget(len(packets), cfg.HopLatency)
		maxCycles += cfg.MaxRetries * cfg.BackoffCap
	}

	pkts := make([]Packet, len(packets))
	copy(pkts, packets)

	ar, reused := nw.getArena()
	defer nw.putArena(ar)
	if rec != nil {
		rec.Arena(reused)
	}
	meta := ar.metaFor(len(pkts))
	// As in the fault engine: nodeBits (bit u ⇔ waiting[u] non-empty)
	// and aBits (bit a ⇔ pipes[a] non-empty) confine the per-cycle
	// sweeps to active nodes and arcs, in the historical scan order.
	waiting := ar.waiting
	pipes := ar.pipes
	nodeBits, aBits := ar.nodeBits, ar.aBits

	res := HealResult{}
	drop := func(bucket *int, cause obs.DropCause) {
		*bucket++
		res.Dropped++
		if rec != nil {
			rec.Drop(cause)
		}
	}

	remaining := 0
	order := ar.order[:0]
	for i := range pkts {
		pkts[i].Delivered = -1
		pkts[i].Hops = 0
		if pkts[i].Src == pkts[i].Dst {
			pkts[i].Delivered = pkts[i].Release
			res.Delivered++
			continue
		}
		order = append(order, int32(i))
		remaining++
	}
	sortByRelease(order, pkts)
	ar.order = order
	cursor := 0

	// Overload protection, as in the fault engine: nodeFull bounds each
	// node's hold queue at QueueCapacity packets per out-arc, hold
	// charges a packet's lifetime hold budget, enter/resident track peak
	// in-network buffer occupancy. The retry ladder is the shared policy.
	policy := newRetryPolicy(cfg.FaultConfig)
	qcap := cfg.QueueCapacity
	nodeFull := func(v int) bool {
		return qcap > 0 && len(waiting[v]) >= qcap*int(nw.arcBase[v+1]-nw.arcBase[v])
	}
	hold := func(i, depth int) bool {
		meta[i].holds++
		if meta[i].holds > cfg.HoldBudget {
			return false
		}
		res.Holds++
		if rec != nil {
			rec.Hold(depth)
		}
		return true
	}
	resident := 0
	enter := func() {
		resident++
		if resident > res.PeakResident {
			res.PeakResident = resident
		}
	}
	holdq := ar.holdq[:0]

	// gossipLive reports physical arc liveness for flood steps: link-
	// state updates travel only over arcs that actually work.
	gossipLive := func(tail, index int) bool { return !s.state.ArcDown(tail, index) }

	var cycle int
	for cycle = 0; remaining > 0 && cycle <= maxCycles; cycle++ {
		abs := start + cycle
		s.state.Advance(abs)

		// Circuit breaker transitions and half-open probes.
		if mon != nil {
			quarantine, release, probe := mon.Tick(abs)
			for _, a := range quarantine {
				s.quarantined[a] = true
			}
			for _, a := range release {
				delete(s.quarantined, a)
			}
			for _, a := range probe {
				res.Probes++
				if rec != nil {
					rec.Probe()
				}
				mon.ProbeResult(abs, a, !s.state.ArcDown(a.Tail, a.Index))
			}
		}

		// Recovery probes: tails test their believed-down out-arcs; a
		// probe that succeeds commits a link-up event.
		if abs > 0 && abs%cfg.ProbeInterval == 0 {
			for _, a := range h.downSet(len(h.events)) {
				res.Probes++
				if rec != nil {
					rec.Probe()
				}
				if !s.state.ArcDown(a.Tail, a.Index) {
					if err := h.commit(a, true, abs); err != nil {
						return res, err
					}
					res.EventsCommitted++
					if rec != nil {
						rec.HealEvent()
					}
				}
			}
		}

		// Gossip: every in-flight link-state flood advances one round.
		h.stepFloods(abs, gossipLive)

		// Inject: source-held packets (source full) retry first, then
		// the release cursor; a full source holds the packet outside the
		// network against its hold budget.
		if len(holdq) > 0 {
			nh := holdq[:0]
			for _, i32 := range holdq {
				i := int(i32)
				src := pkts[i].Src
				if nodeFull(src) {
					if !hold(i, len(waiting[src])) {
						drop(&res.DroppedQueueFull, obs.DropQueueFull)
						remaining--
						continue
					}
					nh = append(nh, i32)
					continue
				}
				waiting[src] = append(waiting[src], i32)
				nodeBits[src>>6] |= 1 << (uint(src) & 63)
				enter()
			}
			holdq = nh
		}
		for cursor < len(order) && pkts[order[cursor]].Release <= cycle {
			i := int(order[cursor])
			cursor++
			src := pkts[i].Src
			if nodeFull(src) {
				if !hold(i, len(waiting[src])) {
					drop(&res.DroppedQueueFull, obs.DropQueueFull)
					remaining--
					continue
				}
				holdq = append(holdq, int32(i))
				continue
			}
			waiting[src] = append(waiting[src], int32(i))
			nodeBits[src>>6] |= 1 << (uint(src) & 63)
			enter()
		}

		// Arrivals: wire time completes; a downed node loses the packet.
		// Swept over the in-flight bitmap in ascending flat-arc order —
		// identical to the historical nested (node, arc) scan.
		for w := range aBits {
			bits := aBits[w]
			for bits != 0 {
				a := int32(w<<6 + trailingZeros64(bits))
				bits &= bits - 1
				pipe := pipes[a]
				keep := pipe[:0]
				v := int(nw.arcHead[a])
				for _, fl := range pipe {
					if fl.ready > cycle {
						keep = append(keep, fl)
						continue
					}
					p := &pkts[fl.pkt]
					p.Hops++
					if rec != nil {
						rec.ArcTraverse(int(a))
					}
					if s.state.NodeDown(v) {
						drop(&res.DroppedFault, obs.DropFault)
						remaining--
						resident--
						continue
					}
					if v == p.Dst {
						p.Delivered = cycle
						res.Delivered++
						remaining--
						resident--
						if cycle > res.Cycles {
							res.Cycles = cycle
						}
						if rec != nil {
							rec.Deliver(cycle-p.Release, p.Hops)
						}
						continue
					}
					waiting[v] = append(waiting[v], int32(fl.pkt))
					nodeBits[v>>6] |= 1 << (uint(v) & 63)
				}
				pipes[a] = keep
				if len(keep) == 0 {
					aBits[w] &^= 1 << (uint(a) & 63)
				}
			}
		}

		// Departures: FIFO per node, one packet per live arc per cycle.
		// A transmission onto a physically-down arc fails: the packet
		// stays queued for DetectLatency cycles and the tail's suspicion
		// of the arc grows — this is the only way the control plane ever
		// learns of a fault.
		for w := range nodeBits {
			wbits := nodeBits[w]
			for wbits != 0 {
				u := w<<6 + trailingZeros64(wbits)
				wbits &= wbits - 1
				depth := len(waiting[u])
				if depth > res.MaxQueue {
					res.MaxQueue = depth
					res.HotNode = u
				}
				if rec != nil {
					rec.NodeQueueDepth(depth)
				}
				ar.busyToken++
				token := ar.busyToken
				busy := ar.busy
				keep := waiting[u][:0]
				for _, i32 := range waiting[u] {
					i := int(i32)
					p := &pkts[i]
					if meta[i].readyAt > cycle {
						keep = append(keep, i32)
						continue
					}
					if p.Hops >= cfg.TTL {
						drop(&res.DroppedTTL, obs.DropTTL)
						remaining--
						resident--
						continue
					}
					arc := s.routeArc(u, p.Dst, rec)
					if arc < 0 {
						if !policy.charge(&meta[i], cycle, p.ID) {
							drop(&res.DroppedNoRoute, obs.DropNoRoute)
							remaining--
							resident--
							continue
						}
						res.Retries++
						if rec != nil {
							rec.Retry()
						}
						keep = append(keep, i32)
						continue
					}
					if busy[arc] == token {
						keep = append(keep, i32) // link occupied this cycle: queue
						continue
					}
					if next := nw.g.Out(u)[arc]; next != p.Dst && nodeFull(next) {
						// Credit-based backpressure: hold in place instead of
						// deepening a full downstream node's queue (delivery
						// always absorbs).
						if !hold(i, len(waiting[next])) {
							drop(&res.DroppedQueueFull, obs.DropQueueFull)
							remaining--
							resident--
							continue
						}
						keep = append(keep, i32)
						continue
					}
					busy[arc] = token
					a := Arc{Tail: u, Index: arc}
					if s.state.ArcDown(u, arc) {
						// NACK: the attempt consumed the link slot and failed.
						res.Nacks++
						if rec != nil {
							rec.Nack()
						}
						if mon != nil {
							mon.ArcFailed(start+cycle, a)
						}
						h.suspicion[a]++
						meta[i].readyAt = cycle + cfg.DetectLatency
						keep = append(keep, i32)
						if h.suspicion[a] >= cfg.SuspectThreshold && !h.activeDown(a) {
							if err := h.commit(a, false, start+cycle); err != nil {
								return res, err
							}
							delete(h.suspicion, a)
							res.Detections++
							res.EventsCommitted++
							if rec != nil {
								rec.Detect()
								rec.HealEvent()
							}
						}
						continue
					}
					delete(h.suspicion, a)
					if mon != nil {
						mon.ArcOK(start+cycle, a)
					}
					if s.nw.router.NextArc(u, p.Dst) != arc {
						res.Reroutes++
						if rec != nil {
							rec.Reroute()
						}
					}
					flat := nw.arcBase[u] + int32(arc)
					pipes[flat] = append(pipes[flat], inflight{pkt: i, ready: cycle + cfg.HopLatency})
					aBits[flat>>6] |= 1 << (uint32(flat) & 63)
				}
				waiting[u] = keep
				if len(keep) == 0 {
					nodeBits[w] &^= 1 << (uint(u) & 63)
				}
			}
		}
	}
	s.clock = start + cycle

	// Exit drain: identical to the fault run — every survivor drops
	// with a cause so Delivered + Dropped == Offered holds on truncated
	// runs too.
	if remaining > 0 {
		for u := 0; u < n; u++ {
			for range waiting[u] {
				drop(&res.Stuck, obs.DropStuck)
				remaining--
			}
			waiting[u] = waiting[u][:0]
		}
		for u := 0; u < n; u++ {
			lo, hi := nw.arcBase[u], nw.arcBase[u+1]
			for a := lo; a < hi; a++ {
				for range pipes[a] {
					drop(&res.Stuck, obs.DropStuck)
					remaining--
				}
				pipes[a] = pipes[a][:0]
			}
		}
		for range holdq {
			drop(&res.DroppedQueueFull, obs.DropQueueFull)
			remaining--
		}
		holdq = holdq[:0]
		for ; cursor < len(order); cursor++ {
			drop(&res.DroppedHorizon, obs.DropHorizon)
			remaining--
		}
		_ = remaining // zero by construction
	}
	ar.holdq = holdq

	// Aggregate.
	latencySum := 0
	for i := range pkts {
		p := pkts[i]
		if p.Delivered < 0 {
			continue
		}
		res.TotalHops += p.Hops
		if p.Hops > res.MaxHops {
			res.MaxHops = p.Hops
		}
		latencySum += p.Delivered - p.Release
		res.TotalWait += (p.Delivered - p.Release) - p.Hops*cfg.HopLatency
	}
	if res.Delivered > 0 {
		res.MeanLatency = float64(latencySum) / float64(res.Delivered)
		res.MeanHops = float64(res.TotalHops) / float64(res.Delivered)
	}
	res.Packets = pkts

	res.FinalEpoch = len(h.events)
	res.Repairs = h.repairs
	res.Converged = h.converged()
	res.ConvergedCycle = h.convergedCycle()
	if res.Converged && len(h.events) > 0 && rec != nil {
		rec.ConvergeCycles(int64(res.ConvergedCycle - h.firstEventCycle()))
	}
	return res, nil
}

// routeArc is the self-healed routing decision at node u for dst: the
// epoch slab of u's knowledge, overridden by directly-observed failures
// and quarantines, with distance-ranked deflection as the fallback.
func (s *SelfHealing) routeArc(u, dst int, rec *obs.Recorder) int {
	h := s.heal
	usable := func(k int) bool {
		a := Arc{Tail: u, Index: k}
		return !s.quarantined[a] && !h.believedDown(u, a)
	}
	r := h.routerFor(h.knownEpoch(u), rec)
	arc := r.NextArc(u, dst)
	if arc >= 0 && usable(arc) {
		return arc
	}
	// The slab's choice is believed dead or quarantined (or dst is
	// unreachable at this epoch): deflect onto the best usable out-arc
	// by fault-free distance; the TTL and retry budgets bound the dodge.
	dist := s.nw.distSlab()
	n := s.nw.g.N()
	best := -1
	bestDist := int32(-1)
	for k, v := range s.nw.g.Out(u) {
		if k == arc || v == u || !usable(k) {
			continue
		}
		dv := dist[v*n+dst]
		if dv == digraph.Unreachable {
			continue
		}
		if best < 0 || dv < bestDist {
			best, bestDist = k, dv
		}
	}
	return best
}
