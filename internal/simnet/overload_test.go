package simnet

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/debruijn"
)

// Tests for the overload-hardened data plane: bounded queues with
// credit-based backpressure, admission control, unified retry budgets,
// and the saturation instrumentation tying them together. The headline
// is claim X-OVERLOAD: at 4x saturation on B(3,5), bounded-queue runs
// keep their buffer footprint at the topology bound (independent of
// offered load), degrade monotonically, terminate with exact
// Delivered + Dropped + Shed == Offered accounting, and reproduce
// byte-identically under the same seed.

// TestClaimXOverload drives B(3,5) at 1x, 2x and 4x its saturation rate
// under bounded queues and checks every leg of the claim.
func TestClaimXOverload(t *testing.T) {
	g := debruijn.DeBruijn(3, 5)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const (
		qcap    = 2
		packets = 20000
		seed    = 11
	)
	multiples := []float64{1, 2, 4}
	points, err := nw.SaturationSweep(multiples, packets, seed, WithQueueCapacity(qcap))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(multiples) {
		t.Fatalf("sweep returned %d points, want %d", len(points), len(multiples))
	}

	// Topology bound on resident packets: per arc, at most qcap queued
	// plus a full link window of qcap + HopLatency in flight or held.
	bound := g.M() * (2*qcap + 1)
	for _, pt := range points {
		// No deadlock: the plain engine does not drain survivors at the
		// cycle budget, so exact accounting proves natural termination.
		if pt.Delivered+pt.Dropped+pt.Shed != pt.Offered {
			t.Fatalf("%gx: accounting broken (run truncated?): %v", pt.Multiple, pt)
		}
		if pt.PeakResident > bound {
			t.Errorf("%gx: PeakResident %d exceeds topology bound %d", pt.Multiple, pt.PeakResident, bound)
		}
		if pt.MaxQueue > qcap {
			t.Errorf("%gx: MaxQueue %d exceeds capacity %d", pt.Multiple, pt.MaxQueue, qcap)
		}
		if pt.Delivered == 0 {
			t.Errorf("%gx: nothing delivered: %v", pt.Multiple, pt)
		}
	}

	// Delivered fraction is monotone non-increasing in offered load.
	for i := 1; i < len(points); i++ {
		if points[i].DeliveredFraction > points[i-1].DeliveredFraction {
			t.Errorf("delivered fraction rose with load: %gx %.4f -> %gx %.4f",
				points[i-1].Multiple, points[i-1].DeliveredFraction,
				points[i].Multiple, points[i].DeliveredFraction)
		}
	}

	// Memory-flat means the bound is load-independent; the same 4x load
	// without queue bounds buffers far beyond it.
	sat, ok := SaturationRate(g)
	if !ok {
		t.Fatal("B(3,5) not strongly connected?")
	}
	rep, err := nw.RunOpts(RatedLoad(packets, 4*sat), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakResident <= bound {
		t.Errorf("unbounded 4x run resident %d within bound %d — contrast lost", rep.PeakResident, bound)
	}
	if points[2].PeakResident >= rep.PeakResident {
		t.Errorf("bounded 4x resident %d not below unbounded %d", points[2].PeakResident, rep.PeakResident)
	}

	// Same seed, same sweep, byte-identical points.
	again, err := nw.SaturationSweep(multiples, packets, seed, WithQueueCapacity(qcap))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(points, again) {
		t.Errorf("same-seed sweep diverged:\n%v\n%v", points, again)
	}
}

// TestSaturationCatalogAccounting: on every catalog topology, a 2x
// overload with bounded queues and admission control keeps the exact
// Delivered + Dropped + Shed == Offered invariant, produces a trace
// VerifyTrace accepts, and is byte-identical across same-seed runs —
// including the event log.
func TestSaturationCatalogAccounting(t *testing.T) {
	for name, g := range catalogGraphs(t) {
		sat, ok := SaturationRate(g)
		if !ok {
			t.Fatalf("%s: no saturation rate", name)
		}
		nw, err := New(g, NewTableRouter(g), DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		const offered = 600
		run := func() RunReport {
			rep, err := nw.RunOpts(RatedLoad(offered, 2*sat),
				WithSeed(23),
				WithQueueCapacity(2),
				WithAdmission(AdmissionConfig{Rate: sat}),
				WithTrace())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return rep
		}
		rep := run()
		if rep.Delivered+rep.Dropped+rep.Shed != offered {
			t.Errorf("%s: accounting broken: %v", name, rep.FaultResult)
		}
		if rep.Shed == 0 && rep.Holds == 0 && rep.Dropped == 0 {
			t.Logf("%s: overload produced no pressure (delivered all %d)", name, rep.Delivered)
		}
		if err := VerifyTrace(g, rep.Packets, rep.Events); err != nil {
			t.Errorf("%s: trace invalid under backpressure: %v", name, err)
		}
		again := run()
		if !reflect.DeepEqual(rep.FaultResult, again.FaultResult) {
			t.Errorf("%s: same-seed results diverged:\n%v\n%v", name, rep.FaultResult, again.FaultResult)
		}
		if !reflect.DeepEqual(rep.Events, again.Events) {
			t.Errorf("%s: same-seed traces diverged (%d vs %d events)", name, len(rep.Events), len(again.Events))
		}
	}
}

// TestChaosOverload: random fault plans at 4x saturation through the
// fault engine with bounded queues and admission — the accounting
// invariant must hold unconditionally, whatever the plan does.
func TestChaosOverload(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	sat, ok := SaturationRate(g)
	if !ok {
		t.Fatal("B(2,4) not strongly connected?")
	}
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		plan := randomChaosPlan(rng, g)
		offered := 200 + rng.Intn(200)
		rep, err := nw.RunOpts(RatedLoad(offered, 4*sat),
			WithSeed(seed),
			WithFaults(plan),
			WithQueueCapacity(1+rng.Intn(3)),
			WithAdmission(AdmissionConfig{Rate: 2 * sat}),
			WithTrace())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Delivered+rep.Dropped+rep.Shed != offered {
			t.Fatalf("seed %d: accounting broken: %v", seed, rep.FaultResult)
		}
		drops := rep.DroppedTTL + rep.DroppedNoRoute + rep.DroppedFault +
			rep.DroppedHorizon + rep.DroppedQueueFull + rep.Stuck
		if drops != rep.Dropped {
			t.Fatalf("seed %d: drop buckets %d don't sum to Dropped %d: %v",
				seed, drops, rep.Dropped, rep.FaultResult)
		}
		if err := VerifyTrace(g, rep.Packets, rep.Events); err != nil {
			t.Fatalf("seed %d: trace invalid: %v", seed, err)
		}
	}
}

// TestHealOverload: the self-healing engine under the same bounded
// queues — accounting exact, queue bound respected, deterministic.
func TestHealOverload(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mkPlan := func() *FaultPlan {
		plan := NewFaultPlan()
		plan.LinkDown(5, 40, 0, 0)
		plan.NodeDown(10, 30, 3)
		return plan
	}
	cfg := HealConfig{FaultConfig: FaultConfig{QueueCapacity: 2}}
	run := func() HealResult {
		session, err := nw.SelfHeal(mkPlan(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := session.Run(UniformRandom(g.N(), 800, 17))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Delivered+res.Dropped != 800 {
		t.Fatalf("accounting broken: %+v", res.FaultResult)
	}
	// The heal engine bounds each node's hold queue at qcap per out-arc,
	// checked when upstreams depart — in-flight packets from different
	// upstreams may all land in one cycle, overshooting by at most the
	// in-degree.
	if bound := 2*2 + 2; res.MaxQueue > bound {
		t.Errorf("MaxQueue %d exceeds node bound %d", res.MaxQueue, bound)
	}
	again := run()
	if !reflect.DeepEqual(res.FaultResult, again.FaultResult) {
		t.Errorf("same-seed healing runs diverged:\n%v\n%v", res.FaultResult, again.FaultResult)
	}
}

// TestRunOptsValidation: invalid options and workloads fail eagerly
// with *OptionError, before any simulation work.
func TestRunOptsValidation(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	nw, err := New(g, NewTableRouter(g), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ok := UniformLoad(10)
	cases := []struct {
		name   string
		w      Workload
		opts   []RunOption
		option string // expected OptionError.Option
	}{
		{"queue capacity zero", ok, []RunOption{WithQueueCapacity(0)}, "WithQueueCapacity"},
		{"queue capacity negative", ok, []RunOption{WithQueueCapacity(-3)}, "WithQueueCapacity"},
		{"hold budget zero", ok, []RunOption{WithHoldBudget(0)}, "WithHoldBudget"},
		{"admission rate zero", ok, []RunOption{WithAdmission(AdmissionConfig{})}, "WithAdmission"},
		{"admission burst negative", ok, []RunOption{WithAdmission(AdmissionConfig{Rate: 1, Burst: -1})}, "WithAdmission"},
		{"admission delay negative", ok, []RunOption{WithAdmission(AdmissionConfig{Rate: 1, MaxDelay: -1})}, "WithAdmission"},
		{"duplicate admission", ok, []RunOption{
			WithAdmission(AdmissionConfig{Rate: 1}), WithAdmission(AdmissionConfig{Rate: 2})}, "WithAdmission"},
		{"duplicate fault plans", ok, []RunOption{WithFaults(nil), WithFaults(nil)}, "WithFaults"},
		{"duplicate fault configs", ok, []RunOption{
			WithFaultConfig(FaultConfig{}), WithFaultConfig(FaultConfig{})}, "WithFaultConfig"},
		{"duplicate recorders", ok, []RunOption{WithRecorder(nil), WithRecorder(nil)}, "WithRecorder"},
		{"negative TTL", ok, []RunOption{WithFaultConfig(FaultConfig{TTL: -1})}, "WithFaultConfig"},
		{"negative retries", ok, []RunOption{WithFaultConfig(FaultConfig{MaxRetries: -1})}, "WithFaultConfig"},
		{"negative backoff", ok, []RunOption{WithFaultConfig(FaultConfig{BackoffBase: -1})}, "WithFaultConfig"},
		{"negative queue capacity in config", ok, []RunOption{WithFaultConfig(FaultConfig{QueueCapacity: -1})}, "WithFaultConfig"},
		{"negative hold budget in config", ok, []RunOption{WithFaultConfig(FaultConfig{HoldBudget: -1})}, "WithFaultConfig"},
		{"poisson rate zero", PoissonLoad(10, 0), nil, "PoissonLoad"},
		{"poisson rate above one", PoissonLoad(10, 1.5), nil, "PoissonLoad"},
		{"poisson negative count", PoissonLoad(-1, 0.5), nil, "PoissonLoad"},
		{"rated rate zero", RatedLoad(10, 0), nil, "RatedLoad"},
		{"rated negative count", RatedLoad(-1, 2), nil, "RatedLoad"},
	}
	for _, tc := range cases {
		_, err := nw.RunOpts(tc.w, tc.opts...)
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: error %v, want *OptionError", tc.name, err)
			continue
		}
		if oe.Option != tc.option {
			t.Errorf("%s: blamed option %q, want %q (%v)", tc.name, oe.Option, tc.option, oe)
		}
	}

	// Zero TTL stays legal: it selects the documented default.
	if _, err := nw.RunOpts(ok, WithFaultConfig(FaultConfig{TTL: 0})); err != nil {
		t.Errorf("zero-value FaultConfig rejected: %v", err)
	}
	// And valid overload options run.
	if _, err := nw.RunOpts(ok, WithQueueCapacity(2), WithHoldBudget(8),
		WithAdmission(AdmissionConfig{Rate: 0.5})); err != nil {
		t.Errorf("valid overload options rejected: %v", err)
	}
}

// TestRetryPolicy: the unified budget reproduces the historical ladder
// exactly at jitter seed zero, and spreads delays over [b/2, b]
// deterministically otherwise.
func TestRetryPolicy(t *testing.T) {
	legacy := newRetryPolicy(FaultConfig{MaxRetries: 8, BackoffBase: 1, BackoffCap: 64}.withDefaults(16, 4))
	want := []int{1, 2, 4, 8, 16, 32, 64, 64, 64}
	for i, w := range want {
		if got := legacy.backoff(i+1, 7); got != w {
			t.Errorf("legacy backoff(%d) = %d, want %d", i+1, got, w)
		}
	}

	jit := legacy
	jit.jitterSeed = 42
	seen := map[int]bool{}
	for pkt := 0; pkt < 200; pkt++ {
		for attempt := 1; attempt <= 8; attempt++ {
			b := 1 << uint(attempt-1)
			if b > 64 {
				b = 64
			}
			got := jit.backoff(attempt, pkt)
			lo := b / 2
			if b == 1 {
				lo = 1 // delays of one cycle are never jittered
			}
			if got < lo || got > b {
				t.Fatalf("jittered backoff(%d, pkt %d) = %d outside [%d, %d]", attempt, pkt, got, lo, b)
			}
			if again := jit.backoff(attempt, pkt); again != got {
				t.Fatalf("jitter not deterministic: %d then %d", got, again)
			}
			seen[jit.backoff(6, pkt)] = true
		}
	}
	if len(seen) < 4 {
		t.Errorf("jitter produced only %d distinct attempt-6 delays across 200 packets", len(seen))
	}

	// charge spends the budget and reports exhaustion.
	var m pktMeta
	for i := 1; i <= 8; i++ {
		if !legacy.charge(&m, 100, 3) {
			t.Fatalf("charge exhausted early at retry %d", i)
		}
		if m.readyAt <= 100 {
			t.Fatalf("charge did not advance readyAt: %d", m.readyAt)
		}
	}
	if legacy.charge(&m, 100, 3) {
		t.Error("charge allowed a 9th retry with MaxRetries 8")
	}
}

// TestAdmitState: token-bucket arithmetic — defaults, fractional rates,
// burst clamping, and the congestion pause.
func TestAdmitState(t *testing.T) {
	// Defaults: burst max(1, Rate), MaxDelay 4*diameter+16.
	a := newAdmitState(AdmissionConfig{Rate: 0.5}, 5)
	if a.burst != 1 || a.maxDelay != 36 {
		t.Fatalf("defaults: burst %v maxDelay %d, want 1 and 36", a.burst, a.maxDelay)
	}
	// Bucket starts full: one admission, then the fractional rate needs
	// two refills per token.
	if !a.take() || a.take() {
		t.Fatal("full bucket should admit exactly one packet")
	}
	a.refill(false)
	if a.take() {
		t.Error("half a token admitted a packet")
	}
	a.refill(false)
	if !a.take() {
		t.Error("two refills at rate 0.5 should yield one token")
	}
	// Congestion pauses refill entirely.
	a.refill(true)
	if a.take() {
		t.Error("congested refill added tokens")
	}
	// Refill clamps at the burst depth.
	b := newAdmitState(AdmissionConfig{Rate: 3, Burst: 4, MaxDelay: 10}, -1)
	for i := 0; i < 10; i++ {
		b.refill(false)
	}
	admitted := 0
	for b.take() {
		admitted++
	}
	if admitted != 4 {
		t.Errorf("burst 4 admitted %d packets after long idle", admitted)
	}
}

// TestSaturationRate: M / meanDistance on a known graph, and failure on
// a disconnected one.
func TestSaturationRate(t *testing.T) {
	g := debruijn.DeBruijn(2, 4)
	sat, ok := SaturationRate(g)
	if !ok || sat <= 0 {
		t.Fatalf("SaturationRate(B(2,4)) = %v, %v", sat, ok)
	}
	mean, _ := g.MeanDistance()
	if want := float64(g.M()) / mean; sat != want {
		t.Errorf("sat %v, want M/meanDistance = %v", sat, want)
	}
}

// TestRatedUniform: the fixed-rate workload releases packets at the
// requested aggregate rate, including rates above one per cycle.
func TestRatedUniform(t *testing.T) {
	pkts := RatedUniform(16, 100, 4, 9)
	if len(pkts) != 100 {
		t.Fatalf("generated %d packets, want 100", len(pkts))
	}
	for i, p := range pkts {
		if want := int(float64(i) / 4); p.Release != want {
			t.Fatalf("packet %d released at %d, want %d", i, p.Release, want)
		}
		if p.Src < 0 || p.Src >= 16 || p.Dst < 0 || p.Dst >= 16 {
			t.Fatalf("packet %d endpoints out of range: %+v", i, p)
		}
	}
	if !reflect.DeepEqual(pkts, RatedUniform(16, 100, 4, 9)) {
		t.Error("same-seed RatedUniform diverged")
	}
}
