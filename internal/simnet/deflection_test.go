package simnet

import (
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
)

func TestNewDeflectionValidation(t *testing.T) {
	g := digraph.New(3)
	g.AddArc(0, 1)
	if _, err := NewDeflection(g, 2); err == nil {
		t.Error("irregular digraph accepted")
	}
	p := digraph.New(2)
	p.AddArc(0, 1)
	p.AddArc(0, 1)
	p.AddArc(1, 1)
	p.AddArc(1, 1)
	if _, err := NewDeflection(p, 2); err == nil {
		t.Error("non-strongly-connected digraph accepted")
	}
}

func TestDeflectionSinglePacketTakesShortestPath(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	dn, err := NewDeflection(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSFrom(3)
	res := dn.Run([]Packet{{ID: 0, Src: 3, Dst: 17}})
	if res.Delivered != 1 {
		t.Fatalf("undelivered: %v", res)
	}
	if res.Packets[0].Hops != dist[17] {
		t.Errorf("uncontended deflection hops %d, shortest %d", res.Packets[0].Hops, dist[17])
	}
	if res.Deflections != 0 {
		t.Errorf("uncontended run deflected %d times", res.Deflections)
	}
}

func TestDeflectionDeliversUnderLoad(t *testing.T) {
	g := debruijn.DeBruijn(2, 6)
	dn, err := NewDeflection(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := dn.Run(UniformRandom(g.N(), 800, 91))
	if res.Delivered != 800 {
		t.Fatalf("delivered %d/800: %v", res.Delivered, res)
	}
	// Under load some packets must have been deflected (otherwise the
	// test exercised nothing).
	if res.Deflections == 0 {
		t.Error("no deflections under heavy load — contention model broken?")
	}
	// Hot-potato paths exceed shortest paths but stay bounded.
	if res.MeanHops < 1 || res.MeanHops > 4*6 {
		t.Errorf("mean hops %f implausible", res.MeanHops)
	}
}

func TestDeflectionVsStoreAndForward(t *testing.T) {
	// Same topology, same workload: deflection trades extra hops for
	// zero buffering. Both must deliver everything; deflection's hop
	// count is at least store-and-forward's.
	g := debruijn.DeBruijn(2, 5)
	pkts := UniformRandom(g.N(), 400, 92)

	dn, _ := NewDeflection(g, 2)
	defRes := dn.Run(pkts)

	nw, _ := New(g, NewTableRouter(g), DefaultConfig())
	sfRes := nw.Run(pkts)

	if defRes.Delivered != 400 || sfRes.Delivered != 400 {
		t.Fatalf("deliveries: deflection %d, SF %d", defRes.Delivered, sfRes.Delivered)
	}
	if defRes.TotalHops < sfRes.TotalHops {
		t.Errorf("deflection used fewer hops (%d) than shortest-path SF (%d)",
			defRes.TotalHops, sfRes.TotalHops)
	}
}

func TestDeflectionSelfPacket(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	dn, _ := NewDeflection(g, 2)
	res := dn.Run([]Packet{{ID: 0, Src: 2, Dst: 2, Release: 5}})
	if res.Delivered != 1 || res.Packets[0].Delivered != 5 {
		t.Errorf("self packet mishandled: %+v", res.Packets[0])
	}
}

func TestDeflectionConservation(t *testing.T) {
	// No packet is ever lost: delivered + in-flight = total at all times;
	// at the end everything is delivered (the digraph is strongly
	// connected and assignment always moves packets).
	g := debruijn.DeBruijn(3, 3)
	dn, _ := NewDeflection(g, 3)
	res := dn.Run(UniformRandom(g.N(), 300, 93))
	if res.Delivered != 300 {
		t.Fatalf("lost packets: %v", res)
	}
	for _, p := range res.Packets {
		if p.Delivered < 0 {
			t.Fatalf("packet %d stuck", p.ID)
		}
		if p.Src != p.Dst && p.Hops == 0 {
			t.Fatalf("packet %d delivered without moving", p.ID)
		}
	}
}
