package simnet

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/otis"
)

// TestNewNetworkEquivalentToNew pins the deprecated positional
// constructor to the options API: New(g, router, cfg) and
// NewNetwork(g, WithRouter(router), WithConfig(cfg)) must produce
// DeepEqual results on the same workloads, across configs and routers.
func TestNewNetworkEquivalentToNew(t *testing.T) {
	g := debruijn.DeBruijn(3, 3)
	cases := []struct {
		name   string
		router Router
		cfg    Config
	}{
		{"table/default", NewTableRouter(g), DefaultConfig()},
		{"shift/default", NewDeBruijnRouter(3, 3), DefaultConfig()},
		{"table/hop2", NewTableRouter(g), Config{HopLatency: 2}},
		{"table/bounded", NewTableRouter(g), Config{HopLatency: 1, QueueCapacity: 2, HoldBudget: 8}},
		{"table/capped", NewTableRouter(g), Config{HopLatency: 1, MaxCycles: 40}},
	}
	for _, tc := range cases {
		old, err := New(g, tc.router, tc.cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", tc.name, err)
		}
		nu, err := NewNetwork(g, WithRouter(tc.router), WithConfig(tc.cfg))
		if err != nil {
			t.Fatalf("%s: NewNetwork: %v", tc.name, err)
		}
		pkts := UniformRandom(g.N(), 3*g.N(), 17)
		if want, got := old.Run(pkts), nu.Run(pkts); !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: Run diverged between New and NewNetwork", tc.name)
		}
		a, err := old.RunOpts(PermutationLoad(), WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		b, err := nu.RunOpts(PermutationLoad(), WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: RunOpts diverged between New and NewNetwork", tc.name)
		}
	}
}

// TestNewNetworkRoutingModes pins mode resolution: explicit table and
// shift selection, the CustomRouting report for WithRouter, and the
// AutoRouting crossover (small graphs keep the table, large
// congruence-form de Bruijn graphs go table-free, non-de-Bruijn graphs
// always table).
func TestNewNetworkRoutingModes(t *testing.T) {
	small := debruijn.DeBruijn(3, 3)
	if nw, err := NewNetwork(small); err != nil || nw.Routing() != TableRouting {
		t.Fatalf("auto on B(3,3): mode %v err %v, want table", nw.Routing(), err)
	}
	if nw, err := NewNetwork(small, WithRouting(ShiftRouting)); err != nil || nw.Routing() != ShiftRouting {
		t.Fatalf("explicit shift on B(3,3): mode %v err %v", nw.Routing(), err)
	}
	// B(2,13) = 8192 nodes > autoShiftNodes: auto resolves table-free.
	big := debruijn.DeBruijn(2, 13)
	if nw, err := NewNetwork(big); err != nil || nw.Routing() != ShiftRouting {
		t.Fatalf("auto on B(2,13): mode %v err %v, want shift", nw.Routing(), err)
	}
	// OTIS physical graphs are de Bruijn only up to isomorphism, not in
	// congruence labels: auto must keep the table even when large.
	h := otis.MustH(4, 4, 2)
	if nw, err := NewNetwork(h); err != nil || nw.Routing() != TableRouting {
		t.Fatalf("auto on H(2,2,4): mode %v err %v, want table", nw.Routing(), err)
	}
	if nw, err := NewNetwork(small, WithRouter(opaqueRouter{NewTableRouter(small)})); err != nil || nw.Routing() != CustomRouting {
		t.Fatalf("WithRouter: mode %v err %v, want custom", nw.Routing(), err)
	}
}

// TestShiftRoutingMatchesTableOnNetwork is the network-level
// differential: the same workload under WithRouting(TableRouting) and
// WithRouting(ShiftRouting) must produce identical results — the
// shortest-path next arc in congruence form is unique, so the two
// routers never disagree.
func TestShiftRoutingMatchesTableOnNetwork(t *testing.T) {
	for _, tc := range []struct{ d, D int }{{2, 6}, {3, 4}, {4, 3}} {
		g := debruijn.DeBruijn(tc.d, tc.D)
		tab, err := NewNetwork(g, WithRouting(TableRouting))
		if err != nil {
			t.Fatal(err)
		}
		shf, err := NewNetwork(g, WithRouting(ShiftRouting))
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 9} {
			a, err := tab.RunOpts(UniformLoad(4*g.N()), WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			b, err := shf.RunOpts(UniformLoad(4*g.N()), WithSeed(seed))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("B(%d,%d) seed %d: shift routing diverged from table routing", tc.d, tc.D, seed)
			}
		}
	}
}

// TestNewNetworkOptionErrors is the eager-validation table for the
// construction options.
func TestNewNetworkOptionErrors(t *testing.T) {
	g := debruijn.DeBruijn(2, 3)
	h := otis.MustH(2, 2, 2)
	cases := []struct {
		name   string
		opts   []NetworkOption
		graph  *digraph.Digraph
		option string
	}{
		{"shift on non-de-Bruijn", []NetworkOption{WithRouting(ShiftRouting)}, h, "WithRouting(ShiftRouting)"},
		{"duplicate routing", []NetworkOption{WithRouting(TableRouting), WithRouting(ShiftRouting)}, g, "WithRouting"},
		{"custom via WithRouting", []NetworkOption{WithRouting(CustomRouting)}, g, "WithRouting"},
		{"unknown mode", []NetworkOption{WithRouting(RoutingMode(99))}, g, "WithRouting"},
		{"nil router", []NetworkOption{WithRouter(nil)}, g, "WithRouter"},
		{"router+routing", []NetworkOption{WithRouter(NewTableRouter(g)), WithRouting(TableRouting)}, g, "WithRouter"},
		{"duplicate router", []NetworkOption{WithRouter(NewTableRouter(g)), WithRouter(NewTableRouter(g))}, g, "WithRouter"},
		{"hop latency 0", []NetworkOption{WithHopLatency(0)}, g, "WithHopLatency"},
		{"duplicate hop latency", []NetworkOption{WithHopLatency(2), WithHopLatency(3)}, g, "WithHopLatency"},
		{"negative max cycles", []NetworkOption{WithMaxCycles(-1)}, g, "WithMaxCycles"},
		{"bad config", []NetworkOption{WithConfig(Config{})}, g, "WithConfig"},
		{"config+hop", []NetworkOption{WithHopLatency(2), WithConfig(DefaultConfig())}, g, "WithConfig"},
		{"bad run default", []NetworkOption{WithQueueCapacity(0)}, g, "WithQueueCapacity"},
		{"shards beyond nodes", []NetworkOption{WithShards(g.N() + 1)}, g, "WithShards"},
	}
	for _, tc := range cases {
		_, err := NewNetwork(tc.graph, tc.opts...)
		var oe *OptionError
		if err == nil || !errors.As(err, &oe) {
			t.Fatalf("%s: want *OptionError, got %v", tc.name, err)
		}
		if oe.Option != tc.option {
			t.Fatalf("%s: error names %q, want %q", tc.name, oe.Option, tc.option)
		}
	}
}

// TestNetworkRunDefaults pins the merge rule: RunOptions given to
// NewNetwork act as defaults for every run, overridden field by field
// by per-run options.
func TestNetworkRunDefaults(t *testing.T) {
	g := debruijn.DeBruijn(2, 5)
	plain, err := NewNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	// Seed default at construction: RunOpts with no options uses it.
	seeded, err := NewNetwork(g, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.RunOpts(UniformLoad(64), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := seeded.RunOpts(UniformLoad(64))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("network-default WithSeed(7) not applied")
	}
	// Per-run override wins.
	want, err = plain.RunOpts(UniformLoad(64), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err = seeded.RunOpts(UniformLoad(64), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("per-run WithSeed(3) did not override the network default")
	}
	// A qcap default changes engine behaviour for plain Run too.
	bounded, err := NewNetwork(g, WithQueueCapacity(1), WithHoldBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	pkts := UniformRandom(g.N(), 6*g.N(), 5)
	wantB, err := plain.RunOpts(Fixed(pkts), WithQueueCapacity(1), WithHoldBudget(2))
	if err != nil {
		t.Fatal(err)
	}
	if gotB := bounded.Run(pkts); !reflect.DeepEqual(wantB.Result, gotB) {
		t.Fatalf("network-default queue bound not applied by Run")
	}
	if wantB.Holds == 0 && wantB.DroppedQueueFull == 0 {
		t.Fatalf("bounded default produced no backpressure; test not exercising the bound")
	}
}
