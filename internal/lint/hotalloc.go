package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc is the allocation budget for the simulator's inner loops. A
// function marked with a
//
//	//lint:hotpath
//
// directive (in its doc comment, or on the line directly above the
// declaration) runs once per cycle — or per cycle per node — in the
// sharded million-node regime, where a single allocation per call turns
// into gigabytes per second of garbage. Inside a hotpath function the
// analyzer reports every construct that allocates:
//
//   - make(...) and new(...);
//   - function literals (a closure capturing locals heap-allocates its
//     environment every call);
//   - &CompositeLit{...} (escaping heap allocation);
//   - append to a slice the function itself declared empty (`var s []T`
//     or `s := []T{}`): that append grows from nil on every call.
//     Appends into parameters, struct fields, or reslices of existing
//     storage are the arena idiom and are allowed — the backing array is
//     owned and reused by the caller.
//
// A deliberate per-run (not per-cycle) allocation inside a hotpath
// function carries a //lint:ignore hotalloc directive stating why it is
// off the per-cycle path.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  `functions marked //lint:hotpath must not allocate: no make/new/closures/&literals/append-growth from empty`,
	Run:  runHotAlloc,
}

func runHotAlloc(pkg *Package, report func(ast.Node, string, ...any)) {
	for _, file := range pkg.Files {
		hotLines := hotpathLines(pkg, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(pkg, fn, hotLines) {
				continue
			}
			emptyLocals := emptyDeclaredSlices(pkg, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					switch {
					case isBuiltin(pkg, e.Fun, "make"):
						report(e, "hotpath function %s allocates with make; move the storage to an arena or the enclosing state", fn.Name.Name)
					case isBuiltin(pkg, e.Fun, "new"):
						report(e, "hotpath function %s allocates with new; move the storage to an arena or the enclosing state", fn.Name.Name)
					case isBuiltin(pkg, e.Fun, "append"):
						if len(e.Args) > 0 {
							if v := useOfAny(pkg, e.Args[0]); v != nil && emptyLocals[v] {
								report(e, "hotpath function %s appends to %s, declared empty in this function: every call grows from nil", fn.Name.Name, v.Name())
							}
						}
					}
				case *ast.FuncLit:
					report(e, "hotpath function %s defines a closure, which heap-allocates its captured environment per call", fn.Name.Name)
					return false // the closure body is off the direct path
				case *ast.UnaryExpr:
					if e.Op == token.AND {
						if _, isLit := unparen(e.X).(*ast.CompositeLit); isLit {
							report(e, "hotpath function %s heap-allocates a composite literal; reuse storage from an arena", fn.Name.Name)
						}
					}
				}
				return true
			})
		}
	}
}

// hotpathLines collects the lines of //lint:hotpath directives in file.
func hotpathLines(pkg *Package, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, group := range file.Comments {
		for _, c := range group.List {
			if strings.HasPrefix(c.Text, "//lint:hotpath") {
				lines[pkg.Fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isHotpath reports whether fn carries the //lint:hotpath directive: in
// its doc comment, or on the line directly above the declaration.
func isHotpath(pkg *Package, fn *ast.FuncDecl, hotLines map[int]bool) bool {
	if fn.Doc != nil {
		for _, c := range fn.Doc.List {
			if strings.HasPrefix(c.Text, "//lint:hotpath") {
				return true
			}
		}
	}
	return hotLines[pkg.Fset.Position(fn.Pos()).Line-1]
}

// emptyDeclaredSlices finds local slice variables declared with no
// backing storage: `var s []T`, `s := []T{}`, or `s := []T(nil)`.
// Appending to these inside a hot loop regrows the backing array per
// call.
func emptyDeclaredSlices(pkg *Package, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	markIdent := func(id *ast.Ident) {
		if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
			if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
				out[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.DeclStmt:
			gd, ok := e.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					markIdent(name)
				}
			}
		case *ast.AssignStmt:
			if e.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range e.Lhs {
				if i >= len(e.Rhs) {
					break
				}
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				switch rhs := unparen(e.Rhs[i]).(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						markIdent(id)
					}
				case *ast.CallExpr: // []T(nil) conversion
					if len(rhs.Args) == 1 {
						if lit, ok := unparen(rhs.Args[0]).(*ast.Ident); ok && lit.Name == "nil" {
							markIdent(id)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// useOfAny resolves an expression to the variable it denotes regardless
// of element type (useOf is specialized to int slices for the aliasing
// check).
func useOfAny(pkg *Package, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}
