package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// PanicStyle enforces the panic-message house style. Inside internal
// packages every panic must carry a constant-format message prefixed
// "<pkg>: " — a string literal, a named string constant, a "<pkg>: ..."
// literal concatenated with a computed tail, or fmt.Sprintf/fmt.Errorf
// with a constant "<pkg>: " format. In the public facade (the module root
// package) and in cmd/* the panic builtin is forbidden outright: those
// layers must return errors or exit.
var PanicStyle = &Analyzer{
	Name: "panicstyle",
	Doc:  `panics in internal/* must carry a constant "<pkg>: "-prefixed message; panic is forbidden in the facade and cmd/*`,
	Run:  runPanicStyle,
}

func runPanicStyle(pkg *Package, report func(ast.Node, string, ...any)) {
	internal := strings.Contains(pkg.Path, "/internal/")
	facade := !strings.Contains(pkg.Path, "/")
	command := strings.Contains(pkg.Path, "/cmd/")
	if !internal && !facade && !command {
		return
	}
	prefix := pkg.Name + ": "
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltin(pkg, call.Fun, "panic") {
				return true
			}
			if facade || command {
				report(call, "panic is forbidden in %s: return an error or exit instead", pkg.Path)
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			if !panicMsgOK(pkg, call.Args[0], prefix) {
				report(call, "panic message must be a constant-format string prefixed %q", prefix)
			}
			return true
		})
	}
}

// panicMsgOK reports whether arg is an accepted panic argument for a
// package whose messages must start with prefix.
func panicMsgOK(pkg *Package, arg ast.Expr, prefix string) bool {
	arg = unparen(arg)
	// Constant string (literal or named constant) with the prefix.
	if tv, ok := pkg.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
	}
	switch e := arg.(type) {
	case *ast.BinaryExpr:
		// "pkg: something: " + err.Error() — the leftmost operand must be
		// the constant prefix.
		left := e.X
		for {
			b, ok := unparen(left).(*ast.BinaryExpr)
			if !ok {
				break
			}
			left = b.X
		}
		if tv, ok := pkg.Info.Types[unparen(left)]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
		}
	case *ast.CallExpr:
		// fmt.Sprintf / fmt.Errorf with a constant prefixed format.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
				if p := fn.Pkg(); p != nil && p.Path() == "fmt" &&
					(fn.Name() == "Sprintf" || fn.Name() == "Errorf" || fn.Name() == "Sprint") &&
					len(e.Args) > 0 {
					if tv, ok := pkg.Info.Types[unparen(e.Args[0])]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						return strings.HasPrefix(constant.StringVal(tv.Value), prefix)
					}
				}
			}
		}
	}
	return false
}

// isBuiltin reports whether fun denotes the predeclared function name.
func isBuiltin(pkg *Package, fun ast.Expr, name string) bool {
	id, ok := unparen(fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}
