package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoSpawn is the concurrency-hygiene check for the parallel kernels. Any
// function in internal/* that spawns goroutines must (a) accept an int
// parameter named "workers" so the spawn count is caller-bounded, (b)
// spawn inside a loop bounded by that parameter (no unbounded go
// statements), and (c) coordinate through sync or sync/atomic — a
// WaitGroup join, mutex-protected merge, or atomic work counter — so the
// kernel cannot leak goroutines or race on its results.
var GoSpawn = &Analyzer{
	Name: "gospawn",
	Doc:  `goroutine-spawning functions in internal/* must take a workers bound and coordinate via sync/atomic`,
	Run:  runGoSpawn,
}

func runGoSpawn(pkg *Package, report func(ast.Node, string, ...any)) {
	if !strings.Contains(pkg.Path, "/internal/") {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			spawns := collectGoStmts(fn.Body)
			if len(spawns) == 0 {
				continue
			}
			workers := workersParam(pkg, fn)
			if workers == nil {
				report(fn, "%s spawns goroutines but has no int parameter named \"workers\" bounding the spawn count", fn.Name.Name)
			} else {
				for _, g := range spawns {
					if !spawnBoundedBy(pkg, fn.Body, g, workers) {
						report(g, "%s spawns a goroutine outside a loop bounded by the \"workers\" parameter", fn.Name.Name)
					}
				}
			}
			if !usesSyncCoordination(pkg, fn.Body) {
				report(fn, "%s spawns goroutines without sync/atomic coordination (WaitGroup, Mutex, or atomic counters)", fn.Name.Name)
			}
		}
	}
}

func collectGoStmts(body *ast.BlockStmt) []*ast.GoStmt {
	var out []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			out = append(out, g)
		}
		return true
	})
	return out
}

// workersParam returns the *types.Var of an int parameter named
// "workers", or nil.
func workersParam(pkg *Package, fn *ast.FuncDecl) *types.Var {
	if fn.Type.Params == nil {
		return nil
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name != "workers" {
				continue
			}
			if v, ok := pkg.Info.Defs[name].(*types.Var); ok && isIntType(v.Type()) {
				return v
			}
		}
	}
	return nil
}

// spawnBoundedBy reports whether the go statement sits inside a for loop
// whose condition references the workers parameter.
func spawnBoundedBy(pkg *Package, body *ast.BlockStmt, g *ast.GoStmt, workers *types.Var) bool {
	bounded := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == ast.Node(g) {
			for _, anc := range stack {
				if f, ok := anc.(*ast.ForStmt); ok && f.Cond != nil && exprMentionsVar(pkg, f.Cond, workers) {
					bounded = true
				}
			}
		}
		return true
	})
	return bounded
}

func exprMentionsVar(pkg *Package, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}

// usesSyncCoordination reports whether body references package sync or
// sync/atomic.
func usesSyncCoordination(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		switch o := obj.(type) {
		case *types.PkgName:
			p := o.Imported().Path()
			if p == "sync" || p == "sync/atomic" {
				found = true
			}
		case *types.TypeName, *types.Func:
			if p := obj.Pkg(); p != nil && (p.Path() == "sync" || p.Path() == "sync/atomic") {
				found = true
			}
		}
		return true
	})
	return found
}
