package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags silently dropped errors in the command-line layers
// (cmd/* and examples/*): a call whose results include an error used as
// a bare statement or deferred. Explicit discards (_ = f(), _, _ = ...)
// pass, as do the fmt.Print* stdout conveniences and writes into
// strings.Builder / bytes.Buffer, which are documented never to fail.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  `cmd/* and examples/* must handle or explicitly discard error returns`,
	Run:  runErrDrop,
}

func runErrDrop(pkg *Package, report func(ast.Node, string, ...any)) {
	if !strings.Contains(pkg.Path, "/cmd/") && !strings.Contains(pkg.Path, "/examples/") {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(s.X).(*ast.CallExpr); ok {
					checkDroppedErr(pkg, call, false, report)
				}
			case *ast.DeferStmt:
				checkDroppedErr(pkg, s.Call, true, report)
			case *ast.GoStmt:
				checkDroppedErr(pkg, s.Call, true, report)
			}
			return true
		})
	}
}

func checkDroppedErr(pkg *Package, call *ast.CallExpr, deferred bool, report func(ast.Node, string, ...any)) {
	if !callReturnsError(pkg, call) || errExempt(pkg, call) {
		return
	}
	if deferred {
		report(call, "deferred call drops its error; wrap it: defer func() { _ = %s }()", callName(pkg, call))
		return
	}
	report(call, "call drops its error; handle it or discard explicitly (_ = %s)", callName(pkg, call))
}

// callReturnsError reports whether any result of the call is error.
func callReturnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// errExempt lists calls whose dropped error is acceptable by convention:
// the fmt print family and writes to in-memory buffers.
func errExempt(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if p := fn.Pkg(); p != nil && p.Path() == "fmt" {
		name := fn.Name()
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Sprint") {
			return true
		}
		// Fprint* to the standard streams is diagnostic output; writes to
		// files and other writers must be checked.
		if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
			if w, ok := unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				if id, ok := w.X.(*ast.Ident); ok && id.Name == "os" &&
					(w.Sel.Name == "Stdout" || w.Sel.Name == "Stderr") {
					return true
				}
			}
		}
		return false
	}
	// Methods on *strings.Builder and *bytes.Buffer never return a
	// non-nil error.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if full == "strings.Builder" || full == "bytes.Buffer" {
				return true
			}
		}
	}
	return false
}

func callName(pkg *Package, call *ast.CallExpr) string {
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name + "(...)"
	case *ast.SelectorExpr:
		if id, ok := f.X.(*ast.Ident); ok {
			return id.Name + "." + f.Sel.Name + "(...)"
		}
		return f.Sel.Name + "(...)"
	}
	return "the call"
}
