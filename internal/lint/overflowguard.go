package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// OverflowGuard watches the d^D / Horner accumulation loops that convert
// between words and integers. Any loop that multiplies an integer
// accumulator into itself (n *= d, n = n*d, u = u*d + x) can silently
// wrap; the reproduction's house rule is that every such loop carries an
// explicit guard — a division-based check (next/d != n, bound/d
// comparisons) or a comparison against a Max bound — before trusting the
// product. Loops whose accumulator is bounded by construction document
// that with a //lint:ignore overflowguard directive.
var OverflowGuard = &Analyzer{
	Name: "overflowguard",
	Doc:  `integer power/Horner accumulation loops must contain an overflow guard`,
	Run:  runOverflowGuard,
}

func runOverflowGuard(pkg *Package, report func(ast.Node, string, ...any)) {
	if !strings.Contains(pkg.Path, "/internal/") {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			guarded := loopHasGuard(body)
			for _, mul := range selfMultiplies(pkg, body) {
				if !guarded {
					report(mul.node, "loop multiplies accumulator %q without an overflow guard; check the product (e.g. next/d != n) or bound it before the multiply", mul.name)
				}
			}
			return true
		})
	}
}

type selfMultiply struct {
	node ast.Node
	name string
}

// selfMultiplies finds assignments in body (not in nested loops, which
// are inspected on their own) where an integer variable is multiplied
// into itself: v *= d, v = v*d, v = v*d + x.
func selfMultiplies(pkg *Package, body *ast.BlockStmt) []selfMultiply {
	var out []selfMultiply
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false // handled by the outer walk
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.MUL_ASSIGN:
			for i, lhs := range as.Lhs {
				v := useOf(pkg, lhs)
				if v != nil && isIntType(v.Type()) && i < len(as.Rhs) {
					out = append(out, selfMultiply{node: as, name: v.Name()})
				}
			}
		case token.ASSIGN, token.DEFINE:
			for i, lhs := range as.Lhs {
				v := useOf(pkg, lhs)
				if v == nil || !isIntType(v.Type()) || i >= len(as.Rhs) {
					continue
				}
				if exprMultipliesVar(pkg, as.Rhs[i], v) {
					out = append(out, selfMultiply{node: as, name: v.Name()})
				}
			}
		}
		return true
	})
	return out
}

// exprMultipliesVar reports whether e contains a product with v as a
// factor — v*d, d*v, or v*d + x (Horner).
func exprMultipliesVar(pkg *Package, e ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.MUL {
			return true
		}
		for _, op := range []ast.Expr{b.X, b.Y} {
			if u := useOf(pkg, op); u != nil && u == v {
				found = true
			}
		}
		return true
	})
	return found
}

// loopHasGuard reports whether the loop body contains an if-condition
// that looks like an overflow guard: a division, or a comparison against
// a Max-named bound.
func loopHasGuard(body *ast.BlockStmt) bool {
	guarded := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifStmt.Cond, func(c ast.Node) bool {
			switch e := c.(type) {
			case *ast.BinaryExpr:
				if e.Op == token.QUO {
					guarded = true
				}
			case *ast.Ident:
				if strings.Contains(e.Name, "Max") || strings.Contains(e.Name, "max") {
					guarded = true
				}
			case *ast.SelectorExpr:
				if strings.Contains(e.Sel.Name, "Max") {
					guarded = true
				}
			}
			return true
		})
		return !guarded
	})
	return guarded
}
