package lint

import (
	"go/ast"
	"strings"
)

// RecGuard enforces the observability hot-path contract: a nil
// *obs.Recorder is the uninstrumented mode, and simulators call through
// it freely from their inner loops. That only works if every exported
// pointer-receiver method of the Recorder type opens with a
// nil-receiver guard —
//
//	func (r *Recorder) Deliver(latency, hops int) {
//		if r == nil {
//			return
//		}
//		...
//	}
//
// (compound conditions like `if r == nil || m <= 0` are fine as long as
// the nil test is there and the guarded branch returns). A method
// missing the guard turns every uninstrumented recording site into a
// nil-pointer panic, so the suite fails the build instead.
var RecGuard = &Analyzer{
	Name: "recguard",
	Doc:  `exported Recorder methods in the obs package must open with a nil-receiver guard`,
	Run:  runRecGuard,
}

func runRecGuard(pkg *Package, report func(ast.Node, string, ...any)) {
	if pkg.Name != "obs" || !strings.Contains(pkg.Path, "/internal/") {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			recv, ok := recorderPointerRecv(fn)
			if !ok {
				continue
			}
			if recv == "" {
				report(fn, "%s has an unnamed *Recorder receiver, so it cannot nil-guard itself", fn.Name.Name)
				continue
			}
			if !opensWithNilGuard(fn.Body, recv) {
				report(fn, "exported Recorder method %s does not open with an `if %s == nil` guard", fn.Name.Name, recv)
			}
		}
	}
}

// recorderPointerRecv reports whether fn's receiver is *Recorder,
// returning the receiver name ("" when anonymous).
func recorderPointerRecv(fn *ast.FuncDecl) (string, bool) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return "", false
	}
	field := fn.Recv.List[0]
	star, ok := field.Type.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	id, ok := star.X.(*ast.Ident)
	if !ok || id.Name != "Recorder" {
		return "", false
	}
	if len(field.Names) == 0 || field.Names[0].Name == "_" {
		return "", true
	}
	return field.Names[0].Name, true
}

// opensWithNilGuard reports whether the body's first statement is an if
// whose condition nil-tests recv and whose branch ends in a return.
func opensWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	iff, ok := body.List[0].(*ast.IfStmt)
	if !ok || iff.Init != nil || len(iff.Body.List) == 0 {
		return false
	}
	if _, ok := iff.Body.List[len(iff.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	return condNilTests(iff.Cond, recv)
}

// condNilTests walks a condition (possibly an || chain) looking for
// `recv == nil`.
func condNilTests(cond ast.Expr, recv string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op.String() != "==" {
			return true
		}
		if isIdentNamed(be.X, recv) && isIdentNamed(be.Y, "nil") {
			found = true
		}
		if isIdentNamed(be.X, "nil") && isIdentNamed(be.Y, recv) {
			found = true
		}
		return true
	})
	return found
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == name
}
