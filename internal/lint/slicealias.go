package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SliceAlias guards the ownership contract on permutation and adjacency
// slices. Exported functions (and methods) in internal packages that
// receive a parameter whose underlying type is []int must treat it as
// caller-owned and read-only: no writes through the parameter, and no
// retaining the slice itself (storing it in a composite literal, a field,
// a package variable, a channel, or returning it). Functions that
// intentionally work in place must say "in-place" in their doc comment,
// which lifts the restriction and documents the contract at the same time.
var SliceAlias = &Analyzer{
	Name: "slicealias",
	Doc:  `exported functions must not mutate or retain []int parameters unless their doc comment says "in-place"`,
	Run:  runSliceAlias,
}

func runSliceAlias(pkg *Package, report func(ast.Node, string, ...any)) {
	if !strings.Contains(pkg.Path, "/internal/") {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if fn.Doc != nil && strings.Contains(strings.ToLower(fn.Doc.Text()), "in-place") {
				continue
			}
			params := paramObjects(pkg, fn)
			if len(params) == 0 {
				continue
			}
			checkSliceAliasBody(pkg, fn, params, report)
		}
	}
}

func checkSliceAliasBody(pkg *Package, fn *ast.FuncDecl, params map[*types.Var]string, report func(ast.Node, string, ...any)) {
	paramOf := func(e ast.Expr) (string, bool) {
		v := useOf(pkg, e)
		if v == nil {
			return "", false
		}
		name, ok := params[v]
		return name, ok
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
					if name, ok := paramOf(ix.X); ok {
						report(lhs, "%s writes to caller-owned slice parameter %q; copy it or document the function as in-place", fn.Name.Name, name)
					}
				}
			}
			for i, rhs := range s.Rhs {
				name, ok := paramOf(rhs)
				if !ok {
					continue
				}
				if len(s.Lhs) == len(s.Rhs) && isLocalVar(pkg, s.Lhs[i]) {
					continue // p2 := p is a local alias; only stores escape
				}
				report(rhs, "%s stores caller-owned slice parameter %q; copy it before retaining", fn.Name.Name, name)
			}
		case *ast.IncDecStmt:
			if ix, ok := unparen(s.X).(*ast.IndexExpr); ok {
				if name, ok := paramOf(ix.X); ok {
					report(s, "%s writes to caller-owned slice parameter %q; copy it or document the function as in-place", fn.Name.Name, name)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range s.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if name, ok := paramOf(v); ok {
					report(v, "%s retains caller-owned slice parameter %q in a composite literal; copy it first", fn.Name.Name, name)
				}
			}
		case *ast.SendStmt:
			if name, ok := paramOf(s.Value); ok {
				report(s.Value, "%s sends caller-owned slice parameter %q over a channel; copy it first", fn.Name.Name, name)
			}
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if name, ok := paramOf(res); ok {
					report(res, "%s returns caller-owned slice parameter %q, aliasing it into the result; copy it first", fn.Name.Name, name)
				}
			}
		}
		return true
	})
}

// isLocalVar reports whether lhs is a plain identifier naming a
// function-local variable (or the blank identifier).
func isLocalVar(pkg *Package, lhs ast.Expr) bool {
	id, ok := unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	var obj types.Object
	if d, ok := pkg.Info.Defs[id]; ok {
		obj = d
	} else if u, ok := pkg.Info.Uses[id]; ok {
		obj = u
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Package-level variables have the package scope as parent.
	return v.Parent() != pkg.Types.Scope()
}
