package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the seeded-reproducibility contract the claim tests
// (Table 1, X-FAULT, X-HEAL) rest on: the same seed must produce the
// same trace, the same metrics document, byte for byte. Three classes of
// nondeterminism sneak into simulation code:
//
//   - map iteration feeding ordered output: a `range` over a map whose
//     body appends to a slice (a trace, a result list), stores through a
//     slice index, or sends on a channel observes Go's randomized map
//     order. The house pattern — collect then sort — is recognized: a
//     function that also calls into package sort (or slices), or a local
//     sort… helper, is presumed to fix the order before it escapes;
//   - wall-clock reads: time.Now / time.Since have no place in library
//     code whose outputs are compared bit-for-bit (telemetry that is
//     deliberately wall-clock carries a directive);
//   - the global math/rand generator: rand.Intn and friends share
//     process-wide state seeded who-knows-where. Library code draws from
//     an explicitly seeded *rand.Rand (rand.New(rand.NewSource(seed)));
//     only cmd/* may use the global convenience functions.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  `no ordered output from map iteration, no time.Now, no global math/rand outside cmd/*`,
	Run:  runDeterminism,
}

// globalRandOK are the package-level math/rand functions that do not
// touch the global generator.
var globalRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pkg *Package, report func(ast.Node, string, ...any)) {
	if strings.Contains(pkg.Path, "/cmd/") {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			sorts := callsSort(pkg, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					if fn, pkgPath := calleeOf(pkg, e); fn != nil {
						switch {
						case pkgPath == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
							report(e, "time.%s breaks seeded reproducibility outside cmd/*; thread cycles or a seed instead", fn.Name())
						case pkgPath == "math/rand" && fn.Type().(*types.Signature).Recv() == nil && !globalRandOK[fn.Name()]:
							report(e, "global math/rand.%s shares process-wide state; draw from a seeded *rand.Rand", fn.Name())
						}
					}
				case *ast.RangeStmt:
					if !isMapRange(pkg, e) || sorts {
						return true
					}
					if w := orderedWriteIn(pkg, e.Body); w != nil {
						report(e, "map iteration order is random; this loop %s (collect and sort, or iterate a sorted key slice)", w.what)
					}
				}
				return true
			})
		}
	}
}

// calleeOf resolves a call to the *types.Func it invokes and its
// package path ("" for builtins and local calls without a package).
func calleeOf(pkg *Package, call *ast.CallExpr) (*types.Func, string) {
	var id *ast.Ident
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil, ""
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, ""
	}
	return fn, fn.Pkg().Path()
}

// callsSort reports whether body calls into package sort or slices, or a
// function whose name starts with "sort" (the repo's local insertion-sort
// helpers, e.g. sortInts, sortByRelease) — the collect-then-sort pattern
// that re-fixes map-iteration order.
func callsSort(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn, p := calleeOf(pkg, call); fn != nil {
				if p == "sort" || p == "slices" || strings.HasPrefix(strings.ToLower(fn.Name()), "sort") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isMapRange(pkg *Package, r *ast.RangeStmt) bool {
	tv, ok := pkg.Info.Types[r.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

type orderedWrite struct{ what string }

// orderedWriteIn finds the first order-sensitive effect in a map-range
// body: an append, a store through a slice index, or a channel send.
// (Counter-style metric increments are commutative and deliberately not
// flagged; trace appends are just slice appends and are.)
func orderedWriteIn(pkg *Package, body *ast.BlockStmt) *orderedWrite {
	var found *orderedWrite
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pkg, e.Fun, "append") {
				found = &orderedWrite{what: "appends to a slice"}
			}
		case *ast.SendStmt:
			found = &orderedWrite{what: "sends on a channel"}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				ix, ok := unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := pkg.Info.Types[ix.X]; ok {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
						found = &orderedWrite{what: "stores through a slice index"}
					}
				}
			}
		}
		return true
	})
	return found
}
