package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SlabIndex polices the int32 narrowing that the flat routing/CSR slabs
// depend on. The slabs store node ids, arc indices and packet indices as
// int32 to halve the footprint (the TableRouter's 4n² bytes is the
// difference between fitting in RAM and not at B(2,20) ≈ 1M nodes) — but
// exactly in that regime the quantities being narrowed approach and can
// exceed 2³¹: a million-node network has ~4M arcs, an all-to-all
// workload n(n-1) packets, and n² pair indices overflow int32 outright.
// A silent wrap poisons a slab with negative indices far from the
// conversion site.
//
// The rule: any conversion int32(e) of a non-constant int expression
// must sit in a function that demonstrably guards the magnitude first —
// either a comparison against math.MaxInt32, or a call to a guard helper
// (a function whose name contains both a guard verb — guard/check/must —
// and "Int32", e.g. guardSlabInt32(n, m)). Conversions whose bound is
// structural carry a //lint:ignore slabindex directive stating the bound.
var SlabIndex = &Analyzer{
	Name: "slabindex",
	Doc:  `int→int32 conversions feeding the slabs must be dominated by an overflow guard (math.MaxInt32 or a guard*Int32 helper)`,
	Run:  runSlabIndex,
}

func runSlabIndex(pkg *Package, report func(ast.Node, string, ...any)) {
	if !strings.Contains(pkg.Path, "/internal/") {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			guarded := hasInt32Guard(pkg, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 || !isInt32Conversion(pkg, call) {
					return true
				}
				arg := unparen(call.Args[0])
				if tv, ok := pkg.Info.Types[arg]; ok {
					if tv.Value != nil {
						return true // constant: the compiler checks the range
					}
					if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.Int {
						return true // only the int→int32 narrowing can wrap here
					}
				}
				if !guarded {
					report(call, "int→int32 slab narrowing in %s has no dominating overflow guard; compare against math.MaxInt32 or call a guard…Int32 helper first", fn.Name.Name)
				}
				return true
			})
		}
	}
}

// isInt32Conversion reports whether call is a conversion to int32.
func isInt32Conversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[unparen(call.Fun)]
	if !ok || !tv.IsType() {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int32
}

// hasInt32Guard reports whether body contains an overflow guard: a
// mention of math.MaxInt32 (or MaxInt32 from any package), or a call to
// a guard helper whose name combines guard/check/must with Int32.
func hasInt32Guard(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == "MaxInt32" {
				found = true
			}
		case *ast.Ident:
			if e.Name == "MaxInt32" {
				found = true
			}
		case *ast.CallExpr:
			name := ""
			switch f := unparen(e.Fun).(type) {
			case *ast.Ident:
				name = f.Name
			case *ast.SelectorExpr:
				name = f.Sel.Name
			}
			lower := strings.ToLower(name)
			if strings.Contains(lower, "int32") &&
				(strings.Contains(lower, "guard") || strings.Contains(lower, "check") || strings.Contains(lower, "must")) {
				found = true
			}
		}
		return !found
	})
	return found
}
