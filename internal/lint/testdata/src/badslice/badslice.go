// Package badslice is a known-bad fixture for the slicealias analyzer.
// Loaded under repro/internal/badslice.
package badslice

// Perm mirrors the repo's named-slice permutation type; parameters of
// this type are covered because the underlying type is []int.
type Perm []int

type holder struct{ data []int }

var global []int

// MutateParam writes through a caller-owned slice.
func MutateParam(p []int) {
	p[0] = 1 // want slicealias "writes to caller-owned slice parameter"
}

// MutateNamed writes through a named slice type.
func MutateNamed(p Perm) {
	p[0]++ // want slicealias "writes to caller-owned slice parameter"
}

// RetainInStruct stores the parameter into a composite literal.
func RetainInStruct(adj []int) *holder {
	return &holder{data: adj} // want slicealias "composite literal"
}

// RetainInGlobal stores the parameter into a package variable.
func RetainInGlobal(p []int) {
	global = p // want slicealias "stores caller-owned slice parameter"
}

// ReturnAlias hands the caller's slice back as the result.
func ReturnAlias(p []int) []int {
	return p // want slicealias "returns caller-owned slice parameter"
}

// Reverse reverses p in-place; the doc comment lifts the restriction.
func Reverse(p []int) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}

// ReadOnly only reads; local aliases and copies are fine.
func ReadOnly(p []int) int {
	q := p
	sum := 0
	for _, v := range q {
		sum += v
	}
	out := make([]int, len(p))
	copy(out, p)
	return sum
}

// unexportedMutate is not checked: the contract covers the exported API.
func unexportedMutate(p []int) {
	p[0] = 9
}
