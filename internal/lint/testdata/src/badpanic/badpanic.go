// Package badpanic is a known-bad fixture for the panicstyle analyzer.
// Loaded by lint_test.go under the import path repro/internal/badpanic.
package badpanic

import (
	"errors"
	"fmt"
)

const prefixed = "badpanic: named constant message"

// Bad panics: every line below must be reported.
func Bad(x int) {
	if x == 1 {
		panic("no prefix at all") // want panicstyle "constant-format string"
	}
	if x == 2 {
		panic(fmt.Sprintf("wrongpkg: value %d", x)) // want panicstyle "constant-format string"
	}
	if x == 3 {
		panic(errors.New("badpanic: dynamic error")) // want panicstyle "constant-format string"
	}
	if x == 4 {
		msg := "badpanic: built at run time"
		panic(msg) // want panicstyle "constant-format string"
	}
}

// Good panics: none of these may be reported.
func Good(x int, err error) {
	switch x {
	case 1:
		panic("badpanic: plain literal")
	case 2:
		panic(fmt.Sprintf("badpanic: value %d out of range", x))
	case 3:
		panic("badpanic: wrapped: " + err.Error())
	case 4:
		panic(prefixed)
	case 5:
		panic(fmt.Errorf("badpanic: %d", x))
	}
}

// Suppressed re-panics an error under a directive; it must not be
// reported.
func Suppressed(err error) {
	if err != nil {
		//lint:ignore panicstyle fixture proves the directive is honored
		panic(err)
	}
}
