// Package badspawn is a known-bad fixture for the gospawn analyzer.
// Loaded under repro/internal/badspawn.
package badspawn

import (
	"sync"
	"sync/atomic"
)

// NoBound spawns one goroutine per item with no workers parameter.
func NoBound(items []int) { // want gospawn "no int parameter named"
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

// UnboundedSpawn has a workers parameter but ignores it.
func UnboundedSpawn(items []int, workers int) {
	var wg sync.WaitGroup
	for range items {
		wg.Add(1)
		go func() { defer wg.Done() }() // want gospawn "outside a loop bounded"
	}
	wg.Wait()
}

// NoCoordination joins through a bare channel of results but never uses
// sync or atomic; the house style requires explicit coordination.
func NoCoordination(workers int) int { // want gospawn "without sync/atomic coordination"
	done := make(chan int)
	for w := 0; w < workers; w++ {
		go func() { done <- 1 }()
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += <-done
	}
	return total
}

// GoodKernel is the house pattern: workers bound, atomic work counter,
// WaitGroup join. It must not be reported.
func GoodKernel(n, workers int) int {
	var next atomic.Int64
	var wg sync.WaitGroup
	sums := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				sums[w] += u
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, s := range sums {
		total += s
	}
	return total
}
