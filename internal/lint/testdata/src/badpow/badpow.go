// Package badpow is a known-bad fixture for the overflowguard analyzer.
// Loaded under repro/internal/badpow.
package badpow

import "math"

// UnguardedPow is the classic d^D accumulation with no guard.
func UnguardedPow(d, D int) int {
	n := 1
	for i := 0; i < D; i++ {
		n *= d // want overflowguard "without an overflow guard"
	}
	return n
}

// UnguardedHorner accumulates v = v*d + x with no guard.
func UnguardedHorner(d int, letters []int) int {
	v := 0
	for _, x := range letters {
		v = v*d + x // want overflowguard "without an overflow guard"
	}
	return v
}

// GuardedDivision uses the product/divisor round-trip check.
func GuardedDivision(d, D int) int {
	n := 1
	for i := 0; i < D; i++ {
		next := n * d
		if next/d != n {
			panic("badpow: d^D overflows int")
		}
		n = next
	}
	return n
}

// GuardedBound compares against MaxInt before multiplying.
func GuardedBound(d, D int) int {
	n := 1
	for i := 0; i < D; i++ {
		if n > math.MaxInt/d {
			panic("badpow: d^D overflows int")
		}
		n *= d
	}
	return n
}

// FloatScale multiplies floats; overflow guards are an integer concern.
func FloatScale(gain float64, stages int) float64 {
	p := 1.0
	for i := 0; i < stages; i++ {
		p *= gain
	}
	return p
}
