// Package badlock is the lockdiscipline fixture: a registry whose maps
// are annotated "guarded by mu", accessed with and without the lock.
package badlock

import "sync"

// Table is the annotated concurrent structure.
type Table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
	// hist is also protected.
	// guarded by mu
	hist []int

	orphan int // guarded by ghost // want lockdiscipline "no field ghost"
}

// New builds a Table; composite-literal initialization is exempt.
func New() *Table {
	return &Table{m: map[string]int{}}
}

// Get holds the read lock: no finding.
func (t *Table) Get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// Put holds the write lock: no finding.
func (t *Table) Put(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
	t.hist = append(t.hist, v)
}

// Size forgets the lock entirely.
func (t *Table) Size() int {
	return len(t.m) // want lockdiscipline "without holding mu"
}

// Drain unlocks before the access; the lexical check still accepts it —
// out of scope for a non-flow analysis — but a missing Lock call is
// caught:
func (t *Table) Drain() []int {
	h := t.hist // want lockdiscipline "without holding mu"
	return h
}

// sizeLocked is the house convention for lock-held callees: no finding.
func (t *Table) sizeLocked() int {
	return len(t.m)
}

// Snapshot calls the locked helper correctly and touches nothing
// guarded itself.
func (t *Table) Snapshot() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sizeLocked()
}

// Suppressed documents a single-threaded setup phase.
func (t *Table) Suppressed() {
	//lint:ignore lockdiscipline called before the table is shared
	t.m["boot"] = 1
}
