// Package obs is the recguard fixture: a metrics Recorder whose
// exported methods variously miss the leading nil-receiver guard the
// hot-path contract demands.
package obs

// Recorder mimics the real obs.Recorder shape.
type Recorder struct {
	n int64
}

// Good opens with the canonical guard: no finding.
func (r *Recorder) Good() {
	if r == nil {
		return
	}
	r.n++
}

// GoodCompound guards with an extra condition; still accepted.
func (r *Recorder) GoodCompound(m int) {
	if r == nil || m <= 0 {
		return
	}
	r.n += int64(m)
}

// GoodReversed writes the nil test the other way around.
func (r *Recorder) GoodReversed() int64 {
	if nil == r {
		return 0
	}
	return r.n
}

func (r *Recorder) Bad() { // want recguard "does not open with"
	r.n++
}

func (r *Recorder) GuardLate() { // want recguard "does not open with"
	r.n++
	if r == nil {
		return
	}
}

func (r *Recorder) GuardNoReturn() { // want recguard "does not open with"
	if r == nil {
		r = &Recorder{}
	}
	r.n++
}

func (r *Recorder) WrongTest(other *Recorder) { // want recguard "does not open with"
	if other == nil {
		return
	}
	r.n++
}

func (*Recorder) Anon() { // want recguard "unnamed"
}

// value receivers cannot be called through a nil pointer cheaply anyway;
// out of scope.
func (r Recorder) Value() int64 { return r.n }

// unexported methods are internal call sites, also out of scope.
func (r *Recorder) bump() {
	r.n++
}

// Suppressed shows the directive escape hatch.
//
//lint:ignore recguard constructed, never nil by construction
func (r *Recorder) Suppressed() {
	r.n++
}
