// Package baddeterm is the determinism fixture: wall-clock reads,
// global math/rand draws, and map iterations feeding ordered output.
package baddeterm

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock twice.
func Stamp() int64 {
	t := time.Now() // want determinism "time.Now breaks seeded reproducibility"
	return t.UnixNano()
}

// Elapsed hides the second Now inside Since.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want determinism "time.Since breaks seeded reproducibility"
}

// Draw uses the process-global generator.
func Draw(n int) int {
	return rand.Intn(n) // want determinism "global math/rand.Intn"
}

// DrawSeeded is the house pattern: an explicitly seeded source.
func DrawSeeded(n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// Keys collects map keys in iteration order: the order leaks.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want determinism "appends to a slice"
		out = append(out, k)
	}
	return out
}

// KeysSorted collects then sorts: the house pattern, no finding.
func KeysSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// KeysLocalSorted fixes the order with a local sort helper instead of
// package sort: also the house pattern, no finding.
func KeysLocalSorted(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(a []string) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Fill stores through a slice index from map order.
func Fill(m map[int]int) []int {
	out := make([]int, len(m))
	i := 0
	for _, v := range m { // want determinism "stores through a slice index"
		out[i] = v
		i++
	}
	return out
}

// Send forwards map entries on a channel in iteration order.
func Send(m map[int]int, ch chan int) {
	for _, v := range m { // want determinism "sends on a channel"
		ch <- v
	}
}

// Invert writes into another map: order-independent, no finding.
func Invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Sum accumulates a commutative reduction: no finding.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Suppressed documents a deliberate wall-clock read.
func Suppressed() int64 {
	//lint:ignore determinism build telemetry, never compared bit-for-bit
	return time.Now().UnixNano()
}
