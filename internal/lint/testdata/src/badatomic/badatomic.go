// Package badatomic is the atomicguard fixture: a stats struct whose
// counter field is updated through sync/atomic on the hot path but read
// and written plainly elsewhere in the package.
package badatomic

import "sync/atomic"

// Stats mixes atomic and plain access to its fields.
type Stats struct {
	hits  int64
	slab  []int64
	plain int64 // never touched atomically: out of scope
}

// Record is the hot path: atomic everywhere, no findings.
func (s *Stats) Record(arc int) {
	atomic.AddInt64(&s.hits, 1)
	atomic.AddInt64(&s.slab[arc], 1)
}

// Read uses atomic loads; no findings.
func (s *Stats) Read(arc int) int64 {
	return atomic.LoadInt64(&s.hits) + atomic.LoadInt64(&s.slab[arc])
}

// Sloppy reads the atomic field plainly: the race the analyzer exists
// to catch.
func (s *Stats) Sloppy() int64 {
	return s.hits // want atomicguard "plain access races"
}

// Reset writes both fields plainly.
func (s *Stats) Reset() {
	s.hits = 0 // want atomicguard "plain access races"
	for i := range s.slab {
		s.slab[i] = 0 // want atomicguard "plain access races"
	}
}

// Grow touches only the slice header via len and an index-only range;
// both are sanctioned, but the element copy from the old slab is plain.
func (s *Stats) Grow(m int) {
	if len(s.slab) >= m {
		return
	}
	next := make([]int64, m)
	for i := range s.slab {
		next[i] = atomic.LoadInt64(&s.slab[i])
	}
	s.slab = next // want atomicguard "plain access races"
}

// Bump touches the never-atomic field plainly: out of scope, no finding.
func (s *Stats) Bump() {
	s.plain++
}

// Fresh initializes a not-yet-published value; the directive documents
// the happens-before argument.
func Fresh() *Stats {
	st := &Stats{slab: make([]int64, 8)}
	//lint:ignore atomicguard st is unpublished until Fresh returns
	st.hits = 1
	return st
}
