// Package directives pins the //lint:ignore semantics. Loaded under
// repro/internal/directives.
package directives

// SameLine is suppressed by a trailing directive on the offending line.
func SameLine() {
	panic("wrong prefix") //lint:ignore panicstyle trailing directives suppress their own line
}

// LineAbove is suppressed by a directive on the line above.
func LineAbove() {
	//lint:ignore panicstyle standalone directives suppress the next line
	panic("wrong prefix")
}

// WrongAnalyzer names a different analyzer, so the panic still fires —
// and the directive, suppressing nothing, is itself stale.
func WrongAnalyzer() {
	//lint:ignore errdrop this names the wrong analyzer // want unuseddirective "suppresses nothing"
	panic("wrong prefix") // want panicstyle "constant-format string"
}

// TooFar is two lines above the offense, so the panic still fires and
// the directive is reported as stale.
func TooFar() {
	//lint:ignore panicstyle this directive is too far away // want unuseddirective "suppresses nothing"

	panic("wrong prefix") // want panicstyle "constant-format string"
}

// Malformed lacks a reason; the driver reports the directive itself (a
// "lint" diagnostic on the directive's own line, checked by the test
// harness directly) and the panic it failed to suppress.
func Malformed() {
	//lint:ignore panicstyle
	panic("wrong prefix") // want panicstyle "constant-format string"
}
