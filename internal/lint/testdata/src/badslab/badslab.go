// Package badslab is the slabindex fixture: int→int32 narrowings with
// and without a dominating overflow guard. Loaded under
// repro/internal/badslab.
package badslab

import (
	"fmt"
	"math"
)

// BuildUnguarded narrows node and pair indices with no guard in sight.
func BuildUnguarded(n int) []int32 {
	slab := make([]int32, n*n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			slab[u*n+v] = int32(u*n + v) // want slabindex "no dominating overflow guard"
		}
	}
	return slab
}

// BuildGuarded compares against math.MaxInt32 first: no finding.
func BuildGuarded(n int) ([]int32, error) {
	if n > 0 && n*n/n != n || int64(n)*int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("badslab: %d nodes overflow the int32 slab", n)
	}
	slab := make([]int32, n*n)
	for u := 0; u < n; u++ {
		slab[u] = int32(u * n)
	}
	return slab, nil
}

// guardSlabInt32 panics unless v fits an int32 slab entry.
func guardSlabInt32(v int) {
	if int64(v) > math.MaxInt32 {
		panic("badslab: value exceeds int32 slab capacity")
	}
}

// BuildHelperGuarded delegates the guard to the helper: no finding.
func BuildHelperGuarded(n int) []int32 {
	guardSlabInt32(n * n)
	slab := make([]int32, n)
	for u := 0; u < n; u++ {
		slab[u] = int32(u)
	}
	return slab
}

// Constants narrows only constants, which the compiler range-checks.
func Constants() int32 {
	return int32(-1) + int32(1<<10)
}

// Widths converts to other widths; only int32 carries the slab
// convention.
func Widths(v int) (uint32, int64) {
	return uint32(v), int64(v)
}

// Suppressed documents a structural bound.
func Suppressed(deg int) int32 {
	//lint:ignore slabindex deg is an out-degree, bounded by d ≤ 64
	return int32(deg)
}
