// Package badroot stands in for the public facade (a module-root import
// path with no slash): panic is forbidden outright.
package badroot

// Explode must be reported no matter how well-formed the message is.
func Explode() {
	panic("badroot: even a styled panic is banned here") // want panicstyle "panic is forbidden"
}
