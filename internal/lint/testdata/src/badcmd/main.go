// Command badcmd is a known-bad fixture for the errdrop analyzer (and
// for the cmd/* panic ban). Loaded under repro/cmd/badcmd.
package main

import (
	"fmt"
	"os"
	"strings"
)

func work() error { return nil }

func pair() (int, error) { return 0, nil }

func main() {
	work() // want errdrop "drops its error"

	defer work() // want errdrop "deferred call drops its error"

	f, err := os.Create("out.txt")
	if err != nil {
		return
	}
	fmt.Fprintln(f, "hello") // want errdrop "drops its error"

	// Explicit discards and handled errors are fine.
	_ = work()
	_, _ = pair()
	if err := work(); err != nil {
		fmt.Fprintln(os.Stderr, "badcmd:", err)
	}

	// The fmt print family and standard-stream diagnostics are exempt.
	fmt.Println("hello")
	fmt.Printf("%d\n", 1)
	fmt.Fprintln(os.Stderr, "diagnostic")
	fmt.Fprintf(os.Stdout, "%d\n", 2)

	// In-memory builders never fail.
	var b strings.Builder
	b.WriteString("x")
	fmt.Println(b.String())

	if err := f.Close(); err != nil {
		os.Exit(1)
	}

	explode(len(os.Args))
}

func explode(n int) {
	if n > 99 {
		panic("badcmd: panics are banned in commands") // want panicstyle "panic is forbidden"
	}
}
