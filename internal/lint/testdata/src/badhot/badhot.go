// Package badhot is the hotalloc fixture: per-cycle kernels marked
// //lint:hotpath that allocate in every way the analyzer must catch.
package badhot

// state is the arena a well-behaved kernel draws storage from.
type state struct {
	scratch []int
	out     []int
}

// StepAllocs is the known-bad kernel.
//
//lint:hotpath
func (s *state) StepAllocs(xs []int) []int {
	buf := make([]int, len(xs)) // want hotalloc "allocates with make"
	p := new(int)               // want hotalloc "allocates with new"
	_ = p
	cmp := func(a, b int) bool { return a < b } // want hotalloc "defines a closure"
	_ = cmp
	box := &state{} // want hotalloc "heap-allocates a composite literal"
	_ = box
	var grow []int
	for _, x := range xs {
		grow = append(grow, x) // want hotalloc "declared empty in this function"
	}
	copy(buf, grow)
	return buf
}

//lint:hotpath
func stepBare(s *state, xs []int) {
	lit := []int{} // empty literal: the append below regrows it per call
	for _, x := range xs {
		lit = append(lit, x) // want hotalloc "declared empty in this function"
	}
	s.out = lit
}

// StepClean is the arena idiom: reslice owned storage, append into
// fields and parameters only. No findings.
//
//lint:hotpath
func (s *state) StepClean(xs []int) {
	keep := s.scratch[:0]
	for _, x := range xs {
		keep = append(keep, x)
		s.out = append(s.out, x)
	}
	s.scratch = keep
}

// Setup is unmarked: allocation is fine off the hot path.
func Setup(n int) *state {
	return &state{scratch: make([]int, 0, n), out: make([]int, 0, n)}
}

// StepExcused allocates once per run, not per cycle; the directive
// records why.
//
//lint:hotpath
func (s *state) StepExcused(n int) []int {
	//lint:ignore hotalloc result escapes to the caller: one allocation per run
	res := make([]int, n)
	return res
}
