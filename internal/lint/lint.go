// Package lint is a repo-specific static-analysis suite for the
// reproduction. It enforces, at `go test ./...` time, the hand-maintained
// invariants the correctness claims rest on: panic-message hygiene in the
// internal packages, no aliasing of caller-owned permutation/adjacency
// slices, overflow guards on d^D/Horner accumulation loops, no silently
// dropped errors in the command-line tools, and bounded, coordinated
// goroutine spawning in the parallel kernels.
//
// The framework is deliberately stdlib-only: packages are parsed with
// go/parser, type-checked with go/types using the source importer, and
// analyzed over the AST. There is no dependency on golang.org/x/tools.
//
// False positives are suppressed with a directive on, or on the line
// immediately above, the offending line:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the original source.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path, e.g. "repro/internal/word"
	Name  string // package name, e.g. "word"
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one check. Run reports findings through report; the driver
// owns position resolution and directive filtering.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pkg *Package, report func(n ast.Node, format string, args ...any))
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		PanicStyle,
		SliceAlias,
		OverflowGuard,
		ErrDrop,
		GoSpawn,
		RecGuard,
		AtomicGuard,
		LockDiscipline,
		Determinism,
		HotAlloc,
		SlabIndex,
	}
}

// ByName resolves analyzer names to the registered analyzers, preserving
// the All() order. Unknown names are an error, so CI subset selection
// cannot silently run nothing.
func ByName(names []string) ([]*Analyzer, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range All() {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		var unknown []string
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("lint: unknown analyzer(s): %s", strings.Join(unknown, ", "))
	}
	return out, nil
}

// Run applies the analyzers to the packages, honors //lint:ignore
// directives, and returns the surviving diagnostics sorted by position.
// Directives naming an analyzer that ran but suppressed nothing are
// stale and reported under the name "unuseddirective".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores, malformed := collectDirectives(pkg)
		diags = append(diags, malformed...)
		for _, a := range analyzers {
			report := func(n ast.Node, format string, args ...any) {
				pos := pkg.Fset.Position(n.Pos())
				if ignores.match(a.Name, pos) {
					return
				}
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      pos,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			a.Run(pkg, report)
		}
		diags = append(diags, ignores.stale(ran)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// isIntType reports whether t's underlying type is an integer (of either
// signedness); overflow guards only concern integer arithmetic.
func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// paramObjects resolves the *types.Var objects of a function's parameters
// whose type has underlying []int (this covers perm.Perm and friends).
func paramObjects(pkg *Package, fn *ast.FuncDecl) map[*types.Var]string {
	out := map[*types.Var]string{}
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pkg.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if s, ok := obj.Type().Underlying().(*types.Slice); ok && isIntType(s.Elem()) {
				out[obj] = name.Name
			}
		}
	}
	return out
}

// useOf resolves an expression to the variable it denotes, or nil.
func useOf(pkg *Package, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
