package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective suppresses one analyzer at one line. A directive written
// as a trailing comment suppresses its own line; a directive on a line of
// its own suppresses the line below it. The suite honors:
//
//	//lint:ignore <analyzer> <reason>
type ignoreDirective struct {
	analyzer string
	file     string
	line     int // line of the directive comment itself
}

type ignoreSet []ignoreDirective

func (s ignoreSet) match(analyzer string, pos token.Position) bool {
	for _, d := range s {
		if d.analyzer != analyzer || d.file != pos.Filename {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			return true
		}
	}
	return false
}

// collectDirectives scans the package's comments for //lint:ignore
// directives. Malformed directives (missing analyzer or reason) are
// returned as diagnostics so they cannot silently suppress nothing.
func collectDirectives(pkg *Package) (ignoreSet, []Diagnostic) {
	var set ignoreSet
	var malformed []Diagnostic
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				set = append(set, ignoreDirective{
					analyzer: fields[0],
					file:     pos.Filename,
					line:     pos.Line,
				})
			}
		}
	}
	return set, malformed
}
