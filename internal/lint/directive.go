package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective suppresses one analyzer at one line. A directive written
// as a trailing comment suppresses its own line; a directive on a line of
// its own suppresses the line below it. The suite honors:
//
//	//lint:ignore <analyzer> <reason>
//
// The driver tracks which directives actually suppressed a finding; a
// directive naming an analyzer that ran yet suppressed nothing is stale
// and is itself reported (analyzer name "unuseddirective"), so ignores
// cannot outlive the code they excused.
type ignoreDirective struct {
	analyzer string
	file     string
	line     int // line of the directive comment itself
	pos      token.Position
	used     bool
}

type ignoreSet []*ignoreDirective

func (s ignoreSet) match(analyzer string, pos token.Position) bool {
	hit := false
	for _, d := range s {
		if d.analyzer != analyzer || d.file != pos.Filename {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			d.used = true
			hit = true
		}
	}
	return hit
}

// stale returns a diagnostic for every directive that names one of the
// analyzers that ran (by name) but never suppressed a finding.
func (s ignoreSet) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s {
		if d.used || !ran[d.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "unuseddirective",
			Pos:      d.pos,
			Message:  "//lint:ignore " + d.analyzer + " directive suppresses nothing; remove it",
		})
	}
	return out
}

// collectDirectives scans the package's comments for //lint:ignore
// directives. Malformed directives (missing analyzer or reason) are
// returned as diagnostics so they cannot silently suppress nothing.
func collectDirectives(pkg *Package) (ignoreSet, []Diagnostic) {
	var set ignoreSet
	var malformed []Diagnostic
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				set = append(set, &ignoreDirective{
					analyzer: fields[0],
					file:     pos.Filename,
					line:     pos.Line,
					pos:      pos,
				})
			}
		}
	}
	return set, malformed
}
