package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockDiscipline checks the documented lock annotations the concurrent
// structures carry. A struct field whose declaration comment says
//
//	guarded by <mu>
//
// (conventionally written `counters map[string]*Counter // guarded by mu`)
// must only be accessed from functions that demonstrably hold that
// mutex: the enclosing function either calls <mu>.Lock() / <mu>.RLock()
// itself, or is named with the house "...Locked" suffix marking it as a
// callee that requires the lock to be held on entry. Composite-literal
// initialization (the constructor pattern) is exempt: a value under
// construction is unpublished.
//
// The check is a lexical discipline, not a race prover — it cannot see
// a lock taken by a caller two frames up — but it catches the common
// regression exactly: a new method reading a guarded map without taking
// the lock first.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  `fields annotated "guarded by <mu>" may only be accessed while holding that mutex (or from a ...Locked function)`,
	Run:  runLockDiscipline,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runLockDiscipline(pkg *Package, report func(ast.Node, string, ...any)) {
	if !strings.Contains(pkg.Path, "/internal/") {
		return
	}
	guarded := guardedFields(pkg, report)
	if len(guarded) == 0 {
		return
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			locked := heldMutexes(pkg, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v := fieldOf(pkg, sel)
				if v == nil {
					return true
				}
				mu, ok := guarded[v]
				if !ok || locked[mu] {
					return true
				}
				report(sel, "%s accesses %s without holding %s (no %s.Lock/RLock in %s; name it ...Locked if the caller holds it)",
					fn.Name.Name, v.Name(), mu, mu, fn.Name.Name)
				return true
			})
		}
	}
}

// guardedFields collects the struct fields annotated "guarded by <mu>",
// mapping each field object to its mutex name. An annotation naming a
// mutex that is not a sibling field is reported: the discipline cannot
// be checked against a lock that does not exist.
func guardedFields(pkg *Package, report func(ast.Node, string, ...any)) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			names := map[string]bool{}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					names[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				mu := guardAnnotation(f)
				if mu == "" {
					continue
				}
				if !names[mu] {
					report(f, "field is annotated \"guarded by %s\" but the struct has no field %s", mu, mu)
					continue
				}
				for _, name := range f.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment, "" when unannotated.
func guardAnnotation(f *ast.Field) string {
	for _, group := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if group == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(group.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// heldMutexes returns the mutex names body locks: every receiver of a
// .Lock() or .RLock() call, identified by the final selector component
// (s.mu.Lock() and mu.Lock() both register "mu").
func heldMutexes(pkg *Package, body *ast.BlockStmt) map[string]bool {
	held := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := unparen(sel.X).(type) {
		case *ast.Ident:
			held[x.Name] = true
		case *ast.SelectorExpr:
			held[x.Sel.Name] = true
		}
		return true
	})
	return held
}
