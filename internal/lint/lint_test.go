package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture tests are golden-diagnostic tests: each known-bad package
// under testdata/src annotates the lines that must fire with trailing
//
//	// want <analyzer> "substring"
//
// comments. The harness runs the full suite (including directive
// filtering) over the fixture and requires an exact match: every want is
// hit, and nothing fires that was not wanted.

var wantRe = regexp.MustCompile(`// want (\w+) "([^"]*)"`)

type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
	hit      bool
}

func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("LoadDir(%s): no package", dir)
	}
	return pkg
}

func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	var wants []*expectation
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(root, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants = append(wants, &expectation{
					file:     path,
					line:     i + 1,
					analyzer: m[1],
					substr:   m[2],
				})
			}
		}
	}
	return wants
}

// checkFixture runs the whole suite over one fixture and compares
// against its want annotations.
func checkFixture(t *testing.T, dir, importPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, importPath)
	wants := parseWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want annotations", dir)
	}
	diags := Run([]*Package{pkg}, All())
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && d.Pos.Line == w.line && d.Analyzer == w.analyzer &&
				strings.Contains(d.Message, w.substr) && strings.HasSuffix(d.Pos.Filename, w.file) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic: %s:%d [%s] containing %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

func TestPanicStyleFixture(t *testing.T) {
	checkFixture(t, "badpanic", "repro/internal/badpanic")
}

func TestPanicStyleFacadeFixture(t *testing.T) {
	checkFixture(t, "badroot", "badroot")
}

func TestSliceAliasFixture(t *testing.T) {
	checkFixture(t, "badslice", "repro/internal/badslice")
}

func TestOverflowGuardFixture(t *testing.T) {
	checkFixture(t, "badpow", "repro/internal/badpow")
}

func TestErrDropAndCmdPanicFixture(t *testing.T) {
	checkFixture(t, "badcmd", "repro/cmd/badcmd")
}

func TestGoSpawnFixture(t *testing.T) {
	checkFixture(t, "badspawn", "repro/internal/badspawn")
}

func TestRecGuardFixture(t *testing.T) {
	checkFixture(t, "badobs", "repro/internal/badobs")
}

func TestAtomicGuardFixture(t *testing.T) {
	checkFixture(t, "badatomic", "repro/internal/badatomic")
}

func TestLockDisciplineFixture(t *testing.T) {
	checkFixture(t, "badlock", "repro/internal/badlock")
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "baddeterm", "repro/internal/baddeterm")
}

func TestHotAllocFixture(t *testing.T) {
	checkFixture(t, "badhot", "repro/internal/badhot")
}

func TestSlabIndexFixture(t *testing.T) {
	checkFixture(t, "badslab", "repro/internal/badslab")
}

// TestByName pins the subset-selection contract cmd/reprolint's
// -analyzers flag builds on: known names resolve in All() order,
// unknown names error rather than silently running nothing.
func TestByName(t *testing.T) {
	subset, err := ByName([]string{"determinism", "hotalloc"})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(subset) != 2 || subset[0].Name != "determinism" || subset[1].Name != "hotalloc" {
		t.Errorf("ByName returned %v", subset)
	}
	if _, err := ByName([]string{"determinism", "nope", "alsono"}); err == nil {
		t.Error("ByName accepted unknown analyzer names")
	} else if !strings.Contains(err.Error(), "alsono, nope") {
		t.Errorf("ByName error %q does not list the unknown names sorted", err)
	}
}

// TestDirectiveSuppression pins the directive semantics beyond what the
// badpanic fixture exercises: same-line suppression, next-line
// suppression, analyzer mismatch, distance, and the malformed-directive
// report. The malformed directive cannot carry a same-line want (extra
// words would make it well-formed), so the harness checks it directly.
func TestDirectiveSuppression(t *testing.T) {
	pkg := loadFixture(t, "directives", "repro/internal/directives")
	diags := Run([]*Package{pkg}, All())
	wants := parseWants(t, "directives")

	var malformed []Diagnostic
	var rest []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "lint" {
			malformed = append(malformed, d)
		} else {
			rest = append(rest, d)
		}
	}
	if len(malformed) != 1 || !strings.Contains(malformed[0].Message, "malformed directive") {
		t.Errorf("want exactly one malformed-directive report, got %v", malformed)
	}
	if len(rest) != len(wants) {
		var got []string
		for _, d := range rest {
			got = append(got, d.Analyzer+":"+strconv.Itoa(d.Pos.Line))
		}
		t.Fatalf("got %d diagnostics %v, want %d", len(rest), got, len(wants))
	}
	for i, w := range wants {
		d := rest[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.substr) {
			t.Errorf("diag %d = %s, want line %d [%s] %q", i, d, w.line, w.analyzer, w.substr)
		}
	}
}

// TestAnalyzerInventory keeps All() honest: the eleven checks the repo
// depends on must all be registered under their documented names.
func TestAnalyzerInventory(t *testing.T) {
	want := []string{"panicstyle", "slicealias", "overflowguard", "errdrop", "gospawn", "recguard",
		"atomicguard", "lockdiscipline", "determinism", "hotalloc", "slabindex"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
	}
}
