package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one module. Intra-module
// imports are resolved recursively from source; everything else is
// delegated to the go/importer "source" importer, so the loader works
// with nothing but the standard library and a GOROOT.
type Loader struct {
	ModulePath string // module path from go.mod, e.g. "repro"
	Root       string // module root directory
	Fset       *token.FileSet

	std    types.Importer
	loaded map[string]*Package // by import path
}

// NewLoader locates go.mod at or above root and prepares a loader.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	dir := abs
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			mod := modulePath(string(data))
			if mod == "" {
				return nil, fmt.Errorf("lint: no module line in %s/go.mod", dir)
			}
			fset := token.NewFileSet()
			return &Loader{
				ModulePath: mod,
				Root:       dir,
				Fset:       fset,
				std:        importer.ForCompiler(fset, "source", nil),
				loaded:     map[string]*Package{},
			}, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		dir = parent
	}
}

func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load resolves package patterns relative to the module root. Supported
// patterns: "./..." (every package in the module), a relative directory
// ("./cmd/reprolint"), or an import path within the module.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.packageDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasPrefix(pat, l.ModulePath+"/"):
			add(filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, l.ModulePath+"/"))))
		case pat == l.ModulePath:
			add(l.Root)
		default:
			add(filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir type-checks the single package in dir under a caller-chosen
// import path. Used by tests to load fixture packages from testdata with
// paths that exercise the analyzers' applicability rules.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check(abs, importPath)
}

// packageDirs walks the module and returns every directory holding at
// least one non-test .go file, skipping testdata, hidden, and scripts
// directories.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "scripts") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// importPathFor maps a directory inside the module to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.check(dir, path)
}

// Import implements types.Importer so that type-checking one module
// package recursively loads its intra-module dependencies from source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := l.Root
		if path != l.ModulePath {
			dir = filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
		}
		pkg, err := l.check(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files for import %q in %s", path, dir)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// check parses and type-checks the package in dir, memoized by import
// path. Test files are skipped: the analyzers guard production code.
func (l *Loader) check(dir, path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.loaded[path] = pkg
	return pkg, nil
}
