package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicGuard enforces all-or-nothing atomicity on struct fields. A
// field that is ever passed by address to a sync/atomic function
// (atomic.AddInt64(&s.n, 1), atomic.LoadInt64(&s.slab[i]), …) is an
// atomic field: mixing in even one plain read or write reintroduces the
// data race the atomic calls were meant to remove, and — worse for this
// repository — a race the race detector only catches when the interleaving
// happens to strike. The analyzer therefore finds every field accessed
// through sync/atomic anywhere in the package and reports every remaining
// plain access to it, package-wide.
//
// Sanctioned non-atomic forms, because they touch only the immutable
// slice header or no memory at all: len(s.f), cap(s.f), and index-only
// `for i := range s.f` loops. Initialization of a struct that has not
// been published yet (composite literals, or stores into a freshly
// allocated value) is invisible to other goroutines; composite-literal
// keys are exempt automatically, and the rare plain store into a fresh
// value carries a //lint:ignore atomicguard directive documenting the
// happens-before argument.
var AtomicGuard = &Analyzer{
	Name: "atomicguard",
	Doc:  `fields accessed via sync/atomic must never be read or written plainly anywhere in the package`,
	Run:  runAtomicGuard,
}

func runAtomicGuard(pkg *Package, report func(ast.Node, string, ...any)) {
	if !strings.Contains(pkg.Path, "/internal/") {
		return
	}
	atomicFields := map[*types.Var]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pkg, call) || len(call.Args) == 0 {
				return true
			}
			if v := addressedField(pkg, call.Args[0]); v != nil {
				atomicFields[v] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}
	for _, file := range pkg.Files {
		sanctioned := sanctionedSelectors(pkg, file)
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldOf(pkg, sel)
			if v == nil || !atomicFields[v] || sanctioned[sel] {
				return true
			}
			report(sel, "field %s is accessed via sync/atomic elsewhere in this package; plain access races with the atomic sites", v.Name())
			return true
		})
	}
}

// isAtomicCall reports whether call invokes a package-level function of
// sync/atomic (the Value/Int64/Pointer method forms need no guard: their
// fields cannot be accessed plainly at all).
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedField resolves &x.f or &x.f[i] to the struct field f, or nil.
func addressedField(pkg *Package, arg ast.Expr) *types.Var {
	u, ok := unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "&" {
		return nil
	}
	e := unparen(u.X)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldOf(pkg, sel)
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// sanctionedSelectors collects the selector nodes in file that are
// legitimate non-plain uses of atomic fields: the address argument of an
// atomic call, len/cap operands, and index-only range subjects.
func sanctionedSelectors(pkg *Package, file *ast.File) map[*ast.SelectorExpr]bool {
	ok := map[*ast.SelectorExpr]bool{}
	mark := func(e ast.Expr) {
		e = unparen(e)
		if ix, okx := e.(*ast.IndexExpr); okx {
			e = unparen(ix.X)
		}
		if sel, oks := e.(*ast.SelectorExpr); oks {
			ok[sel] = true
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if isAtomicCall(pkg, e) && len(e.Args) > 0 {
				if u, oku := unparen(e.Args[0]).(*ast.UnaryExpr); oku && u.Op.String() == "&" {
					mark(u.X)
				}
			}
			if isBuiltin(pkg, e.Fun, "len") || isBuiltin(pkg, e.Fun, "cap") {
				for _, a := range e.Args {
					mark(a)
				}
			}
		case *ast.RangeStmt:
			if e.Value == nil {
				mark(e.X)
			}
		}
		return true
	})
	return ok
}
