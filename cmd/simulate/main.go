// simulate runs packet-level experiments over the networks the paper lays
// out: de Bruijn B(d,D) (natively routed or table-routed), the OTIS
// digraph H(p,q,d) of the optimal layout, or the Kautz digraph.
//
// Usage:
//
//	simulate -topo debruijn -d 2 -diam 8 -workload uniform -packets 5000
//	simulate -topo otis -d 2 -diam 10 -workload permutation
//	simulate -topo kautz -d 2 -diam 8 -workload broadcast
//	simulate -topo debruijn -d 3 -diam 3 -faults
//
// Scale (table-free shift routing + prefix-sharded engine):
//
//	simulate -topo debruijn -d 2 -diam 20 -routing shift -shards 8 -workload permutation
//
// Overload protection (bounded queues, backpressure, admission):
//
//	simulate -d 3 -diam 6 -saturation 1,2,4 -qcap 4            # saturation sweep
//	simulate -d 3 -diam 6 -saturation 1,2,4 -qcap 4 -admit 50  # + source regulator
//	simulate -d 2 -diam 8 -packets 5000 -qcap 8                # bounded single run
//
//	simulate -d 3 -diam 4 -faultlens 2
//	simulate -d 3 -diam 4 -selfheal                          # single-arc fault, no-oracle repair
//	simulate -d 3 -diam 4 -faultlens 2 -selfheal -quarantine # lens fault + circuit breaker
//
// Observability:
//
//	simulate -topo otis -d 3 -diam 4 -metrics run.json   # OBS_run/v1 document
//	simulate -d 3 -diam 4 -faultlens 2 -metrics run.json # with per-lens roll-up
//	simulate -validate-metrics run.json                  # schema check, exit 0/1
//	simulate -pprof :6060 ...                            # pprof + expvar during the run
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/optics"
	"repro/internal/otis"
	"repro/internal/simnet"
)

func main() {
	topo := flag.String("topo", "debruijn", "topology: debruijn | otis | kautz")
	d := flag.Int("d", 2, "degree")
	diam := flag.Int("diam", 8, "diameter")
	workload := flag.String("workload", "uniform", "workload: uniform | permutation | broadcast | alltoall | poisson")
	packets := flag.Int("packets", 2000, "packet count (uniform/poisson)")
	rate := flag.Float64("rate", 0.5, "arrival rate for poisson (packets/cycle)")
	hop := flag.Int("hop", 1, "hop latency in cycles")
	routing := flag.String("routing", "auto",
		"routing: auto | table | shift (shift is table-free, congruence-form de Bruijn only)")
	shards := flag.Int("shards", 1,
		"partition the cycle engine into this many prefix shards (plain runs only)")
	seed := flag.Int64("seed", 1, "workload seed")
	sweep := flag.Bool("sweep", false, "run a load-latency sweep instead of a single workload")
	faults := flag.Bool("faults", false, "run a fault-rate degradation sweep instead of a single workload")
	faultRates := flag.String("faultrates", "0,0.02,0.05,0.1,0.2,0.4,0.7,1",
		"comma-separated per-arc fault rates for -faults")
	faultLens := flag.Int("faultlens", -1,
		"inject a permanent fault of this lens on the B(d,diam) machine and run the workload")
	selfheal := flag.Bool("selfheal", false,
		"run the fault through the self-healing engine (no-oracle detection, gossip, slab repair) and report convergence")
	quarantine := flag.Bool("quarantine", false,
		"with -selfheal: wire the per-lens circuit breaker in and report its transitions")
	saturation := flag.String("saturation", "",
		"comma-separated load multiples of the saturation rate (e.g. 1,2,4): run a saturation sweep")
	qcap := flag.Int("qcap", 0, "bound every output queue at this many packets (0: unbounded)")
	holdBudget := flag.Int("holdbudget", 0,
		"hold-in-place cycles a packet may spend against full queues (0: default 4*qcap+16)")
	admit := flag.Float64("admit", 0,
		"admission-control rate in packets/cycle; packets beyond it wait or are shed (0: off)")
	metricsOut := flag.String("metrics", "", "write an OBS_run/v1 metrics document to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. :6060)")
	validate := flag.String("validate-metrics", "", "validate an OBS_run/v1 metrics file and exit")
	flag.Parse()

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err == nil {
			err = obs.ValidateRunMetrics(data)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate: metrics invalid:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s document\n", *validate, obs.RunMetricsSchema)
		return
	}

	var rec *obs.Recorder
	if *metricsOut != "" {
		rec = obs.NewRecorder(nil)
	}
	if *pprofAddr != "" {
		servePprof(*pprofAddr, rec)
	}

	if *faults {
		runDegradation(*topo, *d, *diam, *faultRates, *packets, *seed, rec, *metricsOut)
		return
	}
	if *selfheal {
		runSelfHeal(*d, *diam, *faultLens, *quarantine, *packets, *seed, rec, *metricsOut)
		return
	}
	if *faultLens >= 0 {
		runLensFault(*d, *diam, *faultLens, *packets, *seed, rec, *metricsOut)
		return
	}

	if *saturation != "" {
		runSaturation(*topo, *d, *diam, *saturation, *packets, *seed,
			*qcap, *holdBudget, *admit, rec, *metricsOut)
		return
	}
	if *sweep {
		g, router, name := buildTopology(*topo, *d, *diam, rec)
		fmt.Printf("topology: %s — %d nodes\n", name, g.N())
		reportRouter(router)
		zero, _ := simnet.ZeroLoadLatency(g, 1)
		fmt.Printf("analytic zero-load latency: %.3f cycles\n\n", zero)
		rates := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9}
		points, err := simnet.LoadSweep(g, router, rates, *packets, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		for _, p := range points {
			fmt.Println(" ", p)
		}
		return
	}

	g, router, name := buildTopology(*topo, *d, *diam, rec)
	// All-pairs statistics (diameter, mean distance) are O(n·(n+m));
	// past ~100k nodes they dwarf the simulation itself, so the big
	// runs print only what is known analytically.
	allPairs := g.N() <= 1<<17
	if allPairs {
		fmt.Printf("topology: %s — %d nodes, degree %d, diameter %d\n",
			name, g.N(), *d, g.Diameter())
	} else {
		fmt.Printf("topology: %s — %d nodes, degree %d\n", name, g.N(), *d)
	}

	pkts := buildWorkload(*workload, g.N(), *packets, *rate, *seed)
	fmt.Printf("workload: %s, %d packets\n", *workload, len(pkts))

	nopts := []simnet.NetworkOption{simnet.WithHopLatency(*hop)}
	switch *routing {
	case "auto":
		// Historical CLI pick: native shift routing on de Bruijn,
		// (recorder-observed) table routing elsewhere.
		nopts = append(nopts, simnet.WithRouter(router))
	case "table":
		nopts = append(nopts, simnet.WithRouting(simnet.TableRouting))
	case "shift":
		nopts = append(nopts, simnet.WithRouting(simnet.ShiftRouting))
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown routing %q\n", *routing)
		os.Exit(2)
	}
	if *shards > 1 {
		nopts = append(nopts, simnet.WithShards(*shards))
	}
	nw, err := simnet.NewNetwork(g, nopts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	fmt.Printf("routing:  %v", nw.Routing())
	if s := nw.Shards(); s > 1 {
		fmt.Printf(", %d shards", s)
	}
	if tr, ok := router.(*simnet.TableRouter); ok && *routing == "auto" {
		fmt.Printf(", %d-byte next-hop slab", tr.Footprint())
	}
	fmt.Println()
	nw.Observe(rec)
	var res simnet.Result
	if opts := overloadOpts(*qcap, *holdBudget, *admit); len(opts) > 0 {
		rep, err := nw.RunOpts(simnet.Fixed(pkts), opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		res = rep.Result
		fmt.Printf("overload: shed=%d dropQueueFull=%d holds=%d peakResident=%d\n",
			res.Shed, res.DroppedQueueFull, res.Holds, res.PeakResident)
	} else {
		res = nw.Run(pkts)
	}
	fmt.Printf("result:   %v\n", res)
	if allPairs {
		if mean, ok := g.MeanDistance(); ok {
			fmt.Printf("graph:    mean distance %.3f, diameter %d (hop-count bounds)\n",
				mean, g.Diameter())
		}
	}
	if res.Delivered > 0 {
		fmt.Printf("queueing: %.3f cycles/packet average wait\n",
			float64(res.TotalWait)/float64(res.Delivered))
	}
	writeMetrics(*metricsOut, rec.Snapshot())
}

// servePprof exposes net/http/pprof (and, when metrics are being
// recorded, the registry as an expvar) on addr for the duration of the
// run.
func servePprof(addr string, rec *obs.Recorder) {
	if rec != nil {
		rec.Registry().PublishExpvar("simulate")
	}
	expvar.Publish("simulate_args", expvar.Func(func() any { return os.Args }))
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintln(os.Stderr, "simulate: pprof server:", err)
		}
	}()
	fmt.Printf("pprof:    serving /debug/pprof and /debug/vars on %s\n", addr)
}

// writeMetrics validates and writes an OBS_run/v1 document (no-op when
// path is empty).
func writeMetrics(path string, m obs.RunMetrics) {
	if path == "" {
		return
	}
	data, err := m.MarshalIndent()
	if err == nil {
		err = obs.ValidateRunMetrics(data)
	}
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate: metrics:", err)
		os.Exit(1)
	}
	fmt.Printf("metrics:  %s written to %s\n", obs.RunMetricsSchema, path)
}

// runDegradation sweeps the per-arc permanent fault rate and prints the
// delivered fraction, latency and reroute counts at each point.
func runDegradation(topo string, d, diam int, rateList string, packets int, seed int64, rec *obs.Recorder, metricsOut string) {
	g, router, name := buildTopology(topo, d, diam, rec)
	rates, err := parseRates(rateList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(2)
	}
	fmt.Printf("topology: %s — %d nodes, %d arcs\n", name, g.N(), g.M())
	reportRouter(router)
	fmt.Printf("degradation sweep: %d packets/point, seed %d\n\n", packets, seed)
	nw, err := simnet.New(g, router, simnet.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	nw.Observe(rec)
	points, err := nw.DegradationSweep(rates, packets, seed, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	for _, p := range points {
		fmt.Println(" ", p)
	}
	writeMetrics(metricsOut, rec.Snapshot())
}

// overloadOpts translates the -qcap/-holdbudget/-admit flags into run
// options (empty when all are off).
func overloadOpts(qcap, holdBudget int, admit float64) []simnet.RunOption {
	var opts []simnet.RunOption
	if qcap > 0 {
		opts = append(opts, simnet.WithQueueCapacity(qcap))
	}
	if holdBudget > 0 {
		opts = append(opts, simnet.WithHoldBudget(holdBudget))
	}
	if admit > 0 {
		opts = append(opts, simnet.WithAdmission(simnet.AdmissionConfig{Rate: admit}))
	}
	return opts
}

// runSaturation offers fixed-rate uniform traffic at each multiple of
// the topology's saturation throughput and prints how delivery degrades
// — with -qcap the buffer footprint stays at the topology bound however
// hard the sources push.
func runSaturation(topo string, d, diam int, multiples string, packets int, seed int64,
	qcap, holdBudget int, admit float64, rec *obs.Recorder, metricsOut string) {
	g, router, name := buildTopology(topo, d, diam, rec)
	ms, err := parseRates(multiples)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(2)
	}
	nw, err := simnet.New(g, router, simnet.DefaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	nw.Observe(rec)
	sat, ok := simnet.SaturationRate(g)
	if !ok {
		fmt.Fprintln(os.Stderr, "simulate: topology has no saturation rate (not strongly connected)")
		os.Exit(2)
	}
	fmt.Printf("topology: %s — %d nodes, %d arcs\n", name, g.N(), g.M())
	fmt.Printf("saturation rate: %.2f packets/cycle (M / mean distance)\n", sat)
	fmt.Printf("sweep: %d packets/point, seed %d, qcap %d, admit %.1f\n\n", packets, seed, qcap, admit)
	points, err := nw.SaturationSweep(ms, packets, seed, overloadOpts(qcap, holdBudget, admit)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	for _, p := range points {
		fmt.Println(" ", p)
	}
	writeMetrics(metricsOut, rec.Snapshot())
}

// runLensFault assembles the B(d, diam) machine, downs one lens
// permanently and reports who is silenced and what survives. With
// -metrics the document includes the per-lens utilization roll-up.
func runLensFault(d, diam, lens, packets int, seed int64, rec *obs.Recorder, metricsOut string) {
	m, err := machine.Build(d, diam, optics.DefaultPitch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	m.Observe(rec)
	fmt.Printf("machine: %v\n", m.Layout)
	side := "transmitter"
	if lens >= m.Layout.P() {
		side = "receiver"
	}
	silencedOut, silencedIn, err := m.LensShadow(lens)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(2)
	}
	fmt.Printf("fault: %s-side lens %d down permanently\n", side, lens)
	if len(silencedOut) > 0 {
		fmt.Printf("shadow: nodes %v silenced as senders\n", silencedOut)
	}
	if len(silencedIn) > 0 {
		fmt.Printf("shadow: nodes %v silenced as receivers\n", silencedIn)
	}
	plan, err := m.LensFaultPlan(0, 0, lens)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	res, err := m.RunWithFaults(simnet.UniformRandom(m.Nodes(), packets, seed),
		plan, simnet.DefaultFaultConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	fmt.Printf("result: %v\n", res)
	fmt.Printf("delivered fraction: %.3f\n", res.DeliveredFraction())
	if metricsOut != "" {
		doc, err := m.RunMetrics(rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		writeMetrics(metricsOut, doc)
	}
}

// runSelfHeal injects a permanent fault on the B(d, diam) machine and
// runs the workload through the self-healing engine: nodes discover the
// dead arcs by NACK timeout, flood link-state events, and patch their
// routing slabs — no oracle access to the fault plan. With -faultlens
// the fault is a whole lens (whose shadow may silence nodes outright,
// so full convergence can be physically unattainable); without it a
// single arc dies, the regime where the network provably converges.
// With -quarantine a per-lens circuit breaker rides along and its
// transitions are reported.
func runSelfHeal(d, diam, lens int, quarantine bool, packets int, seed int64, rec *obs.Recorder, metricsOut string) {
	m, err := machine.Build(d, diam, optics.DefaultPitch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	m.Observe(rec)
	fmt.Printf("machine: %v\n", m.Layout)
	var plan *simnet.FaultPlan
	if lens >= 0 {
		plan, err = m.LensFaultPlan(0, 0, lens) // permanent
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(2)
		}
		fmt.Printf("fault: lens %d down permanently; self-healing with no fault oracle\n", lens)
	} else {
		plan = simnet.NewFaultPlan()
		plan.LinkDown(0, 0, 1, 0)
		fmt.Println("fault: arc (1#0) down permanently; self-healing with no fault oracle")
	}
	cfg := simnet.HealConfig{}
	var breaker *machine.LensBreaker
	if quarantine {
		breaker, err = machine.NewLensBreaker(m, machine.BreakerConfig{}, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		cfg.Monitor = breaker
	}
	session, err := m.SelfHeal(plan, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	var res simnet.HealResult
	// Two waves through one session: the first takes the NACKs and
	// seeds detection + gossip, the second runs on the repaired slabs.
	for wave := 1; wave <= 2; wave++ {
		res, err = session.Run(simnet.UniformRandom(m.Nodes(), packets, seed+int64(wave)))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		fmt.Printf("wave %d: %v\n", wave, res)
	}
	fmt.Printf("delivered fraction: %.3f (wave 2)\n", res.DeliveredFraction())
	if res.Converged {
		fmt.Printf("healing: converged at cycle %d, epoch %d (%d events, %d slab repairs)\n",
			res.ConvergedCycle, res.FinalEpoch, res.EventsCommitted, res.Repairs)
	} else {
		fmt.Printf("healing: NOT converged (%d events committed, epoch %d)\n",
			res.EventsCommitted, res.FinalEpoch)
	}
	fmt.Printf("believed down: %v\n", session.BelievedDown())
	if breaker != nil {
		for _, tr := range breaker.Transitions() {
			fmt.Printf("breaker: cycle %4d lens %d %v -> %v\n", tr.Cycle, tr.Lens, tr.From, tr.To)
		}
		for _, st := range breaker.States() {
			if st.State != machine.BreakerClosed {
				fmt.Printf("breaker: lens %d (%s) ends %v, trips %d, hold until %d\n",
					st.Lens, st.Side, st.State, st.Trips, st.HoldUntil)
			}
		}
		if q := session.Quarantined(); len(q) > 0 {
			fmt.Printf("quarantined arcs: %v\n", q)
		}
	}
	if metricsOut != "" {
		doc, err := m.RunMetrics(rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		writeMetrics(metricsOut, doc)
	}
}

// reportRouter prints the routing-state footprint when the topology uses
// precomputed tables (the native de Bruijn router holds none).
func reportRouter(router simnet.Router) {
	if tr, ok := router.(*simnet.TableRouter); ok {
		fmt.Printf("routing:  %d-byte next-hop slab\n", tr.Footprint())
	}
}

func parseRates(list string) ([]float64, error) {
	var rates []float64
	for _, field := range strings.Split(list, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		r, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return nil, fmt.Errorf("bad fault rate %q: %v", field, err)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		return nil, fmt.Errorf("no fault rates in %q", list)
	}
	return rates, nil
}

// buildTopology returns the digraph and router; table builds are timed
// into the recorder when one is attached.
func buildTopology(topo string, d, diam int, rec *obs.Recorder) (*digraph.Digraph, simnet.Router, string) {
	table := func(g *digraph.Digraph) simnet.Router {
		if rec != nil {
			return simnet.NewTableRouterObserved(g, rec)
		}
		return simnet.NewTableRouter(g)
	}
	switch topo {
	case "debruijn":
		g := debruijn.DeBruijn(d, diam)
		return g, simnet.NewDeBruijnRouter(d, diam), fmt.Sprintf("B(%d,%d), native self-routing", d, diam)
	case "otis":
		layout, ok := otis.OptimalLayout(d, diam)
		if !ok {
			fmt.Fprintf(os.Stderr, "simulate: no OTIS layout for B(%d,%d)\n", d, diam)
			os.Exit(2)
		}
		g := otis.MustH(layout.P(), layout.Q(), d)
		return g, table(g),
			fmt.Sprintf("H(%d,%d,%d) = %v, table routing", layout.P(), layout.Q(), d, layout)
	case "kautz":
		g, _ := debruijn.Kautz(d, diam)
		return g, table(g), fmt.Sprintf("K(%d,%d), table routing", d, diam)
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown topology %q\n", topo)
		os.Exit(2)
		return nil, nil, ""
	}
}

func buildWorkload(kind string, n, packets int, rate float64, seed int64) []simnet.Packet {
	switch kind {
	case "uniform":
		return simnet.UniformRandom(n, packets, seed)
	case "permutation":
		return simnet.Permutation(n, seed)
	case "broadcast":
		return simnet.Broadcast(n, 0)
	case "alltoall":
		return simnet.AllToAll(n)
	case "poisson":
		return simnet.PoissonArrivals(n, packets, rate, seed)
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown workload %q\n", kind)
		os.Exit(2)
		return nil
	}
}
