// simulate runs packet-level experiments over the networks the paper lays
// out: de Bruijn B(d,D) (natively routed or table-routed), the OTIS
// digraph H(p,q,d) of the optimal layout, or the Kautz digraph.
//
// Usage:
//
//	simulate -topo debruijn -d 2 -diam 8 -workload uniform -packets 5000
//	simulate -topo otis -d 2 -diam 10 -workload permutation
//	simulate -topo kautz -d 2 -diam 8 -workload broadcast
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/otis"
	"repro/internal/simnet"
)

func main() {
	topo := flag.String("topo", "debruijn", "topology: debruijn | otis | kautz")
	d := flag.Int("d", 2, "degree")
	diam := flag.Int("diam", 8, "diameter")
	workload := flag.String("workload", "uniform", "workload: uniform | permutation | broadcast | alltoall | poisson")
	packets := flag.Int("packets", 2000, "packet count (uniform/poisson)")
	rate := flag.Float64("rate", 0.5, "arrival rate for poisson (packets/cycle)")
	hop := flag.Int("hop", 1, "hop latency in cycles")
	seed := flag.Int64("seed", 1, "workload seed")
	sweep := flag.Bool("sweep", false, "run a load-latency sweep instead of a single workload")
	flag.Parse()

	if *sweep {
		g, router, name := buildTopology(*topo, *d, *diam)
		fmt.Printf("topology: %s — %d nodes\n", name, g.N())
		zero, _ := simnet.ZeroLoadLatency(g, 1)
		fmt.Printf("analytic zero-load latency: %.3f cycles\n\n", zero)
		rates := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9}
		points, err := simnet.LoadSweep(g, router, rates, *packets, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		for _, p := range points {
			fmt.Println(" ", p)
		}
		return
	}

	g, router, name := buildTopology(*topo, *d, *diam)
	fmt.Printf("topology: %s — %d nodes, degree %d, diameter %d\n",
		name, g.N(), *d, g.Diameter())

	pkts := buildWorkload(*workload, g.N(), *packets, *rate, *seed)
	fmt.Printf("workload: %s, %d packets\n", *workload, len(pkts))

	nw, err := simnet.New(g, router, simnet.Config{HopLatency: *hop})
	if err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
	res := nw.Run(pkts)
	fmt.Printf("result:   %v\n", res)
	if mean, ok := g.MeanDistance(); ok {
		fmt.Printf("graph:    mean distance %.3f, diameter %d (hop-count bounds)\n",
			mean, g.Diameter())
	}
	if res.Delivered > 0 {
		fmt.Printf("queueing: %.3f cycles/packet average wait\n",
			float64(res.TotalWait)/float64(res.Delivered))
	}
}

func buildTopology(topo string, d, diam int) (*digraph.Digraph, simnet.Router, string) {
	switch topo {
	case "debruijn":
		g := debruijn.DeBruijn(d, diam)
		return g, simnet.NewDeBruijnRouter(d, diam), fmt.Sprintf("B(%d,%d), native self-routing", d, diam)
	case "otis":
		layout, ok := otis.OptimalLayout(d, diam)
		if !ok {
			fmt.Fprintf(os.Stderr, "simulate: no OTIS layout for B(%d,%d)\n", d, diam)
			os.Exit(2)
		}
		g := otis.MustH(layout.P(), layout.Q(), d)
		return g, simnet.NewTableRouter(g),
			fmt.Sprintf("H(%d,%d,%d) = %v, table routing", layout.P(), layout.Q(), d, layout)
	case "kautz":
		g, _ := debruijn.Kautz(d, diam)
		return g, simnet.NewTableRouter(g), fmt.Sprintf("K(%d,%d), table routing", d, diam)
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown topology %q\n", topo)
		os.Exit(2)
		return nil, nil, ""
	}
}

func buildWorkload(kind string, n, packets int, rate float64, seed int64) []simnet.Packet {
	switch kind {
	case "uniform":
		return simnet.UniformRandom(n, packets, seed)
	case "permutation":
		return simnet.Permutation(n, seed)
	case "broadcast":
		return simnet.Broadcast(n, 0)
	case "alltoall":
		return simnet.AllToAll(n)
	case "poisson":
		return simnet.PoissonArrivals(n, packets, rate, seed)
	default:
		fmt.Fprintf(os.Stderr, "simulate: unknown workload %q\n", kind)
		os.Exit(2)
		return nil
	}
}
