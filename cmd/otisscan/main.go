// otisscan reruns the exhaustive degree–diameter search of Table 1: for a
// degree d and diameter D it lists every node count n (in a range) for
// which some OTIS(p, q) realizes a digraph H(p, q, d) of diameter exactly
// D, with all qualifying (p, q) splits.
//
// Usage:
//
//	otisscan -d 2 -diam 8              # the paper's D=8 block
//	otisscan -d 2 -diam 9 -min 500     # custom lower bound
//	otisscan -d 3 -diam 4              # beyond the paper
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/otis"
	"repro/internal/word"
)

func main() {
	d := flag.Int("d", 2, "degree")
	diam := flag.Int("diam", 8, "target diameter")
	minN := flag.Int("min", 0, "smallest node count to scan (default: d^diam - 3)")
	maxN := flag.Int("max", 0, "largest node count to scan (default: Moore bound)")
	catalog := flag.Int("catalog", 0, "if > 0, print the structural catalog of all power-of-d splits up to this dimension instead")
	flag.Parse()

	if *d < 2 || *diam < 1 {
		fmt.Fprintln(os.Stderr, "otisscan: need -d >= 2 and -diam >= 1")
		os.Exit(2)
	}
	if *catalog > 0 {
		fmt.Printf("structural catalog of OTIS(%d^p', %d^q') splits, D <= %d:\n\n", *d, *d, *catalog)
		for _, e := range otis.Catalog(*d, *catalog) {
			fmt.Printf("  D=%-2d p'=%d q'=%d  %s\n", e.D, e.PPrime, e.QPrime, e)
		}
		return
	}
	lo := *minN
	if lo <= 0 {
		lo = word.Pow(*d, *diam) - 3
		if lo < 1 {
			lo = 1
		}
	}
	hi := *maxN
	if hi <= 0 {
		hi = digraph.MooreBound(*d, *diam)
	}

	fmt.Printf("H(p,q,%d) with diameter exactly %d, n in [%d, %d] (Moore bound %d):\n",
		*d, *diam, lo, hi, digraph.MooreBound(*d, *diam))
	fmt.Printf("%6s  %s\n", "n", "p q splits")
	rows := otis.SearchDegreeDiameter(*d, *diam, lo, hi)
	for _, row := range rows {
		fmt.Println(row)
	}
	if len(rows) == 0 {
		fmt.Println("  (none)")
		return
	}
	last := rows[len(rows)-1]
	fmt.Printf("\nlargest: n = %d", last.N)
	if last.N == debruijn.KautzOrder(*d, *diam) {
		fmt.Printf(" — the Kautz digraph K(%d,%d), as the paper observes", *d, *diam)
	}
	fmt.Println()
}
