// isocheck decides whether H(p, q, d) is isomorphic to the de Bruijn
// digraph B(d, D), using the O(D) criterion of Corollary 4.5 when p and q
// are powers of d, and falling back to materializing the digraphs and
// running the generic isomorphism search otherwise.
//
// Usage:
//
//	isocheck -d 2 -p 16 -q 32        # → B(2,8): yes
//	isocheck -d 2 -p 8 -q 64        # → not a de Bruijn layout
//	isocheck -d 2 -p 2 -q 384 -kautz # compare against K(2,8) instead
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/otis"
)

func main() {
	d := flag.Int("d", 2, "degree")
	p := flag.Int("p", 16, "transmitter groups")
	q := flag.Int("q", 32, "transmitters per group")
	kautz := flag.Bool("kautz", false, "compare against the Kautz digraph instead of de Bruijn")
	flag.Parse()

	h, err := otis.H(*p, *q, *d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "isocheck:", err)
		os.Exit(2)
	}
	n := h.N()
	fmt.Printf("H(%d,%d,%d): %d nodes, degree %d, %d lenses\n", *p, *q, *d, n, *d, *p+*q)

	if *kautz {
		checkKautz(h, *d, n)
		return
	}

	// Fast path: powers of d (Corollary 4.5, O(D) time).
	if pp, ok := logExact(*p, *d); ok {
		if qp, ok := logExact(*q, *d); ok {
			D := pp + qp - 1
			fmt.Printf("powers of d: p = %d^%d, q = %d^%d, D = %d\n", *d, pp, *d, qp, D)
			f := otis.IndexPermutation(pp, qp)
			fmt.Printf("Proposition 4.1 permutation f = %v\n", f)
			if otis.IsDeBruijnLayout(pp, qp) {
				fmt.Printf("f is cyclic → H(%d,%d,%d) ≅ B(%d,%d)   [Corollary 4.2]\n", *p, *q, *d, *d, D)
				mapping, err := otis.LayoutWitness(*d, pp, qp)
				if err != nil {
					fmt.Fprintln(os.Stderr, "isocheck: witness construction failed:", err)
					os.Exit(1)
				}
				if err := digraph.VerifyIsomorphism(h, debruijn.DeBruijn(*d, D), mapping); err != nil {
					fmt.Fprintln(os.Stderr, "isocheck: witness verification failed:", err)
					os.Exit(1)
				}
				fmt.Println("explicit isomorphism constructed and verified")
			} else {
				fmt.Printf("f is not cyclic → H(%d,%d,%d) ≇ B(%d,%d)   [Corollary 4.2]\n", *p, *q, *d, *d, D)
				comps := h.WeaklyConnectedComponents()
				fmt.Printf("the digraph has %d weak components (Remark 3.10)\n", len(comps))
			}
			return
		}
	}

	// Slow path: generic isomorphism search against B(d, D) with d^D = n.
	D, ok := logExact(n, *d)
	if !ok {
		fmt.Printf("n = %d is not a power of %d: cannot be a de Bruijn digraph B(%d,·)\n", n, *d, *d)
		return
	}
	fmt.Printf("general split: running the generic isomorphism search against B(%d,%d)\n", *d, D)
	if digraph.AreIsomorphic(h, debruijn.DeBruijn(*d, D)) {
		fmt.Printf("H(%d,%d,%d) ≅ B(%d,%d)\n", *p, *q, *d, *d, D)
	} else {
		fmt.Printf("H(%d,%d,%d) ≇ B(%d,%d)\n", *p, *q, *d, *d, D)
	}
}

func checkKautz(h *digraph.Digraph, d, n int) {
	// K(d,D) has d^{D-1}(d+1) nodes; find D.
	D := 1
	for debruijn.KautzOrder(d, D) < n {
		D++
	}
	if debruijn.KautzOrder(d, D) != n {
		fmt.Printf("n = %d is not a Kautz order for degree %d\n", n, d)
		return
	}
	k, _ := debruijn.Kautz(d, D)
	if digraph.AreIsomorphic(h, k) {
		fmt.Printf("H ≅ K(%d,%d)\n", d, D)
	} else {
		fmt.Printf("H ≇ K(%d,%d)\n", d, D)
	}
}

// logExact returns e with base^e = v, if v is an exact power.
func logExact(v, base int) (int, bool) {
	if v < 1 || base < 2 {
		return 0, false
	}
	e := 0
	for v > 1 {
		if v%base != 0 {
			return 0, false
		}
		v /= base
		e++
	}
	return e, true
}
