// bench is the repository's performance harness: it runs a canonical,
// fixed-seed benchmark set over the simulation hot path (router
// construction, permutation runs on B(3,6)/B(3,7), an OTIS machine load
// sweep, a fault-rate degradation sweep, and the incremental
// slab-repair patch priced against a from-scratch residual rebuild) and
// emits the measurements
// as BENCH_simnet.json so the performance trajectory of the repository
// is recorded, comparable across commits, and checkable in CI.
//
// Usage:
//
//	bench                   # canonical set, writes BENCH_simnet.json
//	bench -smoke            # tiny sizes for the CI gate (same schema)
//	bench -out FILE         # write somewhere else
//	bench -validate FILE    # parse and sanity-check an emitted file
//	bench -compare FILE     # exit 2 if permutation/*, table_route/*,
//	                        # shift_route/* or shard_run/* throughput
//	                        # regresses >20% against FILE's entries
//
// -compare keeps the gated entries at their canonical sizes even under
// -smoke, so the names line up with a committed canonical baseline.
//
// Every entry reports ns/op, B/op and allocs/op as measured by
// testing.Benchmark, plus delivered-packets/sec for the entries that
// move traffic (delivered work per op divided by wall time per op).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/debruijn"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/optics"
	"repro/internal/simnet"
)

// benchSchema identifies the output format; bump on breaking changes.
const benchSchema = "BENCH_simnet/v1"

// benchEntry is one measured benchmark in the JSON output.
type benchEntry struct {
	Name        string  `json:"name"`
	Nodes       int     `json:"nodes"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// DeliveredPacketsPerSec is delivered-work throughput for entries
	// that run traffic; omitted for entries that deliver nothing (pure
	// construction benchmarks), where a literal 0 would read as a
	// measured throughput of zero.
	DeliveredPacketsPerSec float64 `json:"delivered_packets_per_sec,omitempty"`
	// Metrics holds selected obs-registry readings from one instrumented
	// op of the same workload (the timed loop itself runs with a nil
	// recorder, so the numbers above are uninstrumented).
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// benchFile is the BENCH_simnet.json document.
type benchFile struct {
	Schema    string       `json:"schema"`
	Smoke     bool         `json:"smoke"`
	GoVersion string       `json:"go_version"`
	Timestamp string       `json:"timestamp"`
	Results   []benchEntry `json:"results"`
}

// spec is one benchmark to run: fn is the measured body, delivered the
// packets delivered by a single op (for throughput), nodes the network
// size.
type spec struct {
	name      string
	nodes     int
	delivered int
	fn        func(b *testing.B)
	// metrics, when set, runs ONE instrumented op after the timed loop
	// and returns selected registry readings for the entry.
	metrics func() (map[string]int64, error)
}

func main() {
	smoke := flag.Bool("smoke", false, "run tiny sizes (CI smoke gate)")
	out := flag.String("out", "BENCH_simnet.json", "output path")
	validate := flag.String("validate", "", "validate an emitted JSON file and exit")
	compare := flag.String("compare", "", "baseline BENCH_simnet.json: exit 2 if gated-family delivered-packets/sec regresses >20%")
	flag.Parse()

	if *validate != "" {
		if err := validateFile(*validate); err != nil {
			fmt.Fprintln(os.Stderr, "bench: invalid:", err)
			os.Exit(1)
		}
		fmt.Printf("bench: %s is a valid %s document\n", *validate, benchSchema)
		return
	}

	// Keep the smoke gate fast: testing.Benchmark honours -test.benchtime.
	testing.Init()
	if *smoke {
		if err := flag.Set("test.benchtime", "50ms"); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	specs, err := buildSpecs(*smoke, *compare != "")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	doc := benchFile{
		Schema:    benchSchema,
		Smoke:     *smoke,
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, s := range specs {
		r := testing.Benchmark(s.fn)
		e := benchEntry{
			Name:        s.name,
			Nodes:       s.nodes,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if s.delivered > 0 && e.NsPerOp > 0 {
			e.DeliveredPacketsPerSec = float64(s.delivered) * 1e9 / e.NsPerOp
		}
		if s.metrics != nil {
			m, err := s.metrics()
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				os.Exit(1)
			}
			e.Metrics = m
		}
		doc.Results = append(doc.Results, e)
		fmt.Printf("%-24s %14.0f ns/op %12d B/op %8d allocs/op %14.0f pkts/s\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.DeliveredPacketsPerSec)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	fmt.Printf("bench: wrote %d results to %s\n", len(doc.Results), *out)

	if *compare != "" {
		if err := compareBaseline(*compare, doc.Results); err != nil {
			fmt.Fprintln(os.Stderr, "bench: regression:", err)
			os.Exit(2)
		}
		fmt.Printf("bench: no gated-family throughput regression against %s\n", *compare)
	}
}

// comparedFamilies are the benchmark-name prefixes the CI perf gate
// covers: the routing hot paths (table and table-free) and the sharded
// engine, the families whose throughput the repository tracks.
var comparedFamilies = []string{"permutation/", "table_route/", "shift_route/", "shard_run/"}

// compareBaseline is the CI perf gate: every gated-family entry of the
// baseline document must be matched by a current entry delivering at
// least 80% of the baseline's packets/sec. Entries the baseline lacks
// pass trivially (new sizes are not regressions).
func compareBaseline(path string, current []benchEntry) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	got := make(map[string]float64, len(current))
	for _, e := range current {
		got[e.Name] = e.DeliveredPacketsPerSec
	}
	for _, b := range base.Results {
		gated := false
		for _, fam := range comparedFamilies {
			if strings.HasPrefix(b.Name, fam) {
				gated = true
				break
			}
		}
		if !gated || b.DeliveredPacketsPerSec <= 0 {
			continue
		}
		cur, ok := got[b.Name]
		if !ok {
			return fmt.Errorf("%s: baseline entry %q missing from this run", path, b.Name)
		}
		if cur < 0.8*b.DeliveredPacketsPerSec {
			return fmt.Errorf("%s: %.0f pkts/s is %.0f%% of the %.0f pkts/s baseline (floor 80%%)",
				b.Name, cur, 100*cur/b.DeliveredPacketsPerSec, b.DeliveredPacketsPerSec)
		}
	}
	return nil
}

// buildSpecs assembles the canonical benchmark set. Seeds are fixed so
// runs are comparable across commits; sizes shrink under -smoke —
// except the permutation entries when comparing, which stay canonical
// so their names match the committed baseline's.
func buildSpecs(smoke, comparing bool) ([]spec, error) {
	type size struct{ d, D int }
	routerSizes := []size{{3, 6}, {3, 7}}
	permSizes := []size{{3, 6}, {3, 7}}
	machineD, machineDiam := 2, 8
	sweepRates := []float64{0.1, 0.3, 0.5}
	sweepPackets := 2000
	faultD, faultDiam := 3, 5
	faultRates := []float64{0, 0.05, 0.2, 0.5}
	faultPackets := 400
	repairSizes := size{3, 6}
	if smoke {
		routerSizes = []size{{2, 5}}
		if !comparing {
			permSizes = []size{{2, 5}}
		}
		machineD, machineDiam = 2, 4
		sweepRates = []float64{0.2, 0.5}
		sweepPackets = 300
		faultD, faultDiam = 2, 4
		faultRates = []float64{0, 0.5}
		faultPackets = 100
		repairSizes = size{2, 5}
	}

	var specs []spec
	for _, sz := range routerSizes {
		g := debruijn.DeBruijn(sz.d, sz.D)
		specs = append(specs, spec{
			name:  fmt.Sprintf("router_build/B(%d,%d)", sz.d, sz.D),
			nodes: g.N(),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					simnet.NewTableRouter(g)
				}
			},
			metrics: func() (map[string]int64, error) {
				rec := obs.NewRecorder(nil)
				simnet.NewTableRouterObserved(g, rec)
				snap := rec.Snapshot()
				return map[string]int64{
					obs.MetricRouterNS:    snap.Gauges[obs.MetricRouterNS],
					obs.MetricRouterBytes: snap.Gauges[obs.MetricRouterBytes],
				}, nil
			},
		})
	}

	for _, sz := range permSizes {
		g := debruijn.DeBruijn(sz.d, sz.D)
		nw, err := simnet.New(g, simnet.NewTableRouter(g), simnet.DefaultConfig())
		if err != nil {
			return nil, err
		}
		pkts := simnet.Permutation(g.N(), 1)
		probe := nw.Run(pkts)
		specs = append(specs, spec{
			name:      fmt.Sprintf("permutation/B(%d,%d)", sz.d, sz.D),
			nodes:     g.N(),
			delivered: probe.Delivered,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					nw.Run(pkts)
				}
			},
			metrics: func() (map[string]int64, error) {
				rec := obs.NewRecorder(nil)
				if _, err := nw.RunOpts(simnet.Fixed(pkts), simnet.WithRecorder(rec)); err != nil {
					return nil, err
				}
				snap := rec.Snapshot()
				return map[string]int64{
					obs.MetricDelivered:    snap.Counters[obs.MetricDelivered],
					obs.MetricArcTraversed: snap.Counters[obs.MetricArcTraversed],
					obs.MetricMaxQueue:     snap.Gauges[obs.MetricMaxQueue],
				}, nil
			},
		})
	}

	// Table vs table-free routing on the fused kernel: the same
	// permutation through WithRouting(TableRouting) and
	// WithRouting(ShiftRouting). The pair prices the O(D) closed-form
	// next-arc against the slab gather — the shift entry is the routing
	// cost the million-node regime pays, with zero table bytes behind it.
	routeSizes := permSizes
	for _, sz := range routeSizes {
		g := debruijn.DeBruijn(sz.d, sz.D)
		pkts := simnet.Permutation(g.N(), 1)
		for _, rt := range []struct {
			family string
			mode   simnet.RoutingMode
		}{
			{"table_route", simnet.TableRouting},
			{"shift_route", simnet.ShiftRouting},
		} {
			nw, err := simnet.NewNetwork(g, simnet.WithRouting(rt.mode))
			if err != nil {
				return nil, err
			}
			probe := nw.Run(pkts)
			specs = append(specs, spec{
				name:      fmt.Sprintf("%s/B(%d,%d)", rt.family, sz.d, sz.D),
				nodes:     g.N(),
				delivered: probe.Delivered,
				fn: func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						nw.Run(pkts)
					}
				},
			})
		}
	}

	// The sharded engine across shard counts, on a heavier uniform load
	// under table-free routing. Workers are capped at GOMAXPROCS, so on
	// small CI machines the higher shard counts measure partition +
	// barrier overhead rather than speedup; the metrics record the
	// worker count actually used so readings are comparable across
	// machines.
	shardSize := permSizes[len(permSizes)-1]
	sh := debruijn.DeBruijn(shardSize.d, shardSize.D)
	shNet, err := simnet.NewNetwork(sh, simnet.WithRouting(simnet.ShiftRouting))
	if err != nil {
		return nil, err
	}
	shPkts := simnet.UniformRandom(sh.N(), 4*sh.N(), 9)
	for _, s := range []int{1, 2, 4, 8} {
		s := s
		probe, err := shNet.RunOpts(simnet.Fixed(shPkts), simnet.WithShards(s))
		if err != nil {
			return nil, err
		}
		workers := s
		if p := runtime.GOMAXPROCS(0); workers > p {
			workers = p
		}
		specs = append(specs, spec{
			name:      fmt.Sprintf("shard_run/B(%d,%d)/%dw", shardSize.d, shardSize.D, s),
			nodes:     sh.N(),
			delivered: probe.Delivered,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := shNet.RunOpts(simnet.Fixed(shPkts), simnet.WithShards(s)); err != nil {
						b.Fatal(err)
					}
				}
			},
			metrics: func() (map[string]int64, error) {
				return map[string]int64{
					"shards":  int64(s),
					"workers": int64(workers),
				}, nil
			},
		})
	}

	m, err := machine.Build(machineD, machineDiam, optics.DefaultPitch)
	if err != nil {
		return nil, fmt.Errorf("machine B(%d,%d): %w", machineD, machineDiam, err)
	}
	mg := m.Physical
	mRouter := simnet.NewTableRouter(mg)
	probePts, err := simnet.LoadSweep(mg, mRouter, sweepRates, sweepPackets, 1)
	if err != nil {
		return nil, err
	}
	sweepDelivered := 0
	for _, p := range probePts {
		sweepDelivered += p.Delivered
	}
	specs = append(specs, spec{
		name:      fmt.Sprintf("machine_sweep/B(%d,%d)", machineD, machineDiam),
		nodes:     mg.N(),
		delivered: sweepDelivered,
		fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := simnet.LoadSweep(mg, mRouter, sweepRates, sweepPackets, 1); err != nil {
					b.Fatal(err)
				}
			}
		},
	})

	// Incremental repair vs full rebuild: the same single-arc fault,
	// patched into the pristine slab (repair_patch) versus a
	// from-scratch NewTableRouter on the residual digraph
	// (router_rebuild). The pair quantifies what the self-healing layer
	// saves per committed link-state event; the repair property tests
	// guarantee the two outputs route identically.
	rg := debruijn.DeBruijn(repairSizes.d, repairSizes.D)
	rBase := simnet.NewTableRouter(rg)
	deadArc := []simnet.Arc{{Tail: 1, Index: 0}}
	rResidual := rg.RemoveArc(1, rg.Out(1)[0])
	specs = append(specs,
		spec{
			name:  fmt.Sprintf("repair_patch/B(%d,%d)", repairSizes.d, repairSizes.D),
			nodes: rg.N(),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := rBase.Repair(rg, deadArc); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		spec{
			name:  fmt.Sprintf("router_rebuild/B(%d,%d)", repairSizes.d, repairSizes.D),
			nodes: rg.N(),
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					simnet.NewTableRouter(rResidual)
				}
			},
		})

	fg := debruijn.DeBruijn(faultD, faultDiam)
	fRouter := simnet.NewTableRouter(fg)
	probeFault, err := simnet.DegradationSweep(fg, fRouter, faultRates, faultPackets, 5, 0)
	if err != nil {
		return nil, err
	}
	faultDelivered := 0
	for _, p := range probeFault {
		faultDelivered += p.Delivered
	}
	specs = append(specs, spec{
		name:      fmt.Sprintf("fault_sweep/B(%d,%d)", faultD, faultDiam),
		nodes:     fg.N(),
		delivered: faultDelivered,
		fn: func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := simnet.DegradationSweep(fg, fRouter, faultRates, faultPackets, 5, 0); err != nil {
					b.Fatal(err)
				}
			}
		},
		metrics: func() (map[string]int64, error) {
			fnw, err := simnet.New(fg, fRouter, simnet.DefaultConfig())
			if err != nil {
				return nil, err
			}
			rec := obs.NewRecorder(nil)
			fnw.Observe(rec)
			if _, err := fnw.DegradationSweep(faultRates, faultPackets, 5, 0); err != nil {
				return nil, err
			}
			snap := rec.Snapshot()
			return map[string]int64{
				obs.MetricDelivered: snap.Counters[obs.MetricDelivered],
				obs.MetricDropped:   snap.Counters[obs.MetricDropped],
				obs.MetricReroutes:  snap.Counters[obs.MetricReroutes],
				obs.MetricRetries:   snap.Counters[obs.MetricRetries],
			}, nil
		},
	})

	// Saturation under overload protection: fixed-rate uniform traffic
	// at 1x/2x/4x the topology's saturation throughput with bounded
	// queues. The per-multiple metrics record how delivery degrades and
	// that the buffer footprint (peak queue depth, resident packets)
	// stays pinned at the topology bound however hard the sources push.
	satD, satDiam := 3, 6
	satPackets := 5000
	satQcap := 4
	if smoke {
		satD, satDiam = 2, 4
		satPackets = 200
	}
	sg := debruijn.DeBruijn(satD, satDiam)
	snw, err := simnet.New(sg, simnet.NewTableRouter(sg), simnet.DefaultConfig())
	if err != nil {
		return nil, err
	}
	satRate, ok := simnet.SaturationRate(sg)
	if !ok {
		return nil, fmt.Errorf("B(%d,%d): no saturation rate", satD, satDiam)
	}
	for _, mult := range []float64{1, 2, 4} {
		mult := mult
		load := simnet.RatedLoad(satPackets, mult*satRate)
		opts := []simnet.RunOption{simnet.WithSeed(7), simnet.WithQueueCapacity(satQcap)}
		probe, err := snw.RunOpts(load, opts...)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec{
			name:      fmt.Sprintf("saturation/B(%d,%d)/%gx", satD, satDiam, mult),
			nodes:     sg.N(),
			delivered: probe.Delivered,
			fn: func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := snw.RunOpts(load, opts...); err != nil {
						b.Fatal(err)
					}
				}
			},
			metrics: func() (map[string]int64, error) {
				rec := obs.NewRecorder(nil)
				rep, err := snw.RunOpts(load, append(opts, simnet.WithRecorder(rec))...)
				if err != nil {
					return nil, err
				}
				snap := rec.Snapshot()
				return map[string]int64{
					obs.MetricDelivered: snap.Counters[obs.MetricDelivered],
					obs.MetricDropped:   snap.Counters[obs.MetricDropped],
					obs.MetricHolds:     snap.Counters[obs.MetricHolds],
					obs.MetricMaxQueue:  snap.Gauges[obs.MetricMaxQueue],
					"sim_peak_resident": int64(rep.PeakResident),
					"delivered_permille": int64(1000 * float64(rep.Delivered) /
						float64(satPackets)),
				}, nil
			},
		})
	}

	return specs, nil
}

// validateFile parses an emitted BENCH_simnet.json and checks the schema
// invariants the CI gate relies on.
func validateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc benchFile
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != benchSchema {
		return fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, benchSchema)
	}
	if len(doc.Results) == 0 {
		return fmt.Errorf("%s: no results", path)
	}
	for i, r := range doc.Results {
		if r.Name == "" {
			return fmt.Errorf("%s: result %d has no name", path, i)
		}
		if r.NsPerOp <= 0 || r.Iterations <= 0 {
			return fmt.Errorf("%s: result %q has non-positive timing", path, r.Name)
		}
		if r.BytesPerOp < 0 || r.AllocsPerOp < 0 || r.DeliveredPacketsPerSec < 0 {
			return fmt.Errorf("%s: result %q has negative counters", path, r.Name)
		}
		for name, v := range r.Metrics {
			if v < 0 {
				return fmt.Errorf("%s: result %q metric %q is negative", path, r.Name, name)
			}
		}
	}
	return nil
}
