// sequence generates de Bruijn sequences and Hamiltonian ring embeddings
// of B(d, D) — the embedding payload of the networks the paper lays out.
//
// Usage:
//
//	sequence -d 2 -D 4            # print the 16-letter binary sequence
//	sequence -d 2 -D 4 -cycle     # print the Hamiltonian cycle instead
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/debruijn"
	"repro/internal/word"
)

func main() {
	d := flag.Int("d", 2, "alphabet size")
	D := flag.Int("D", 4, "order (window length)")
	cycle := flag.Bool("cycle", false, "print the Hamiltonian cycle of B(d,D) instead of the sequence")
	flag.Parse()

	if *cycle {
		cyc, err := debruijn.HamiltonianCycle(*d, *D)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sequence:", err)
			os.Exit(1)
		}
		if err := debruijn.VerifyHamiltonianCycle(debruijn.DeBruijn(*d, *D), cyc); err != nil {
			fmt.Fprintln(os.Stderr, "sequence: verification failed:", err)
			os.Exit(1)
		}
		fmt.Printf("Hamiltonian cycle of B(%d,%d) (%d vertices):\n", *d, *D, len(cyc))
		for i, u := range cyc {
			if i > 0 && i%8 == 0 {
				fmt.Println()
			}
			fmt.Printf("%s ", word.MustFromInt(*d, *D, u))
		}
		fmt.Println()
		return
	}

	seq, err := debruijn.Sequence(*d, *D)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sequence:", err)
		os.Exit(1)
	}
	if err := debruijn.VerifySequence(*d, *D, seq); err != nil {
		fmt.Fprintln(os.Stderr, "sequence: verification failed:", err)
		os.Exit(1)
	}
	fmt.Printf("de Bruijn sequence B(%d,%d), length %d (every %d-window distinct):\n",
		*d, *D, len(seq), *D)
	for _, letter := range seq {
		if *d <= 10 {
			fmt.Printf("%d", letter)
		} else {
			fmt.Printf("%d.", letter)
		}
	}
	fmt.Println()
}
