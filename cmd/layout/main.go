// layout computes optimal OTIS layouts of de Bruijn digraphs: for B(d, D)
// it reports every feasible power-of-d split, the lens-minimizing one
// (Corollaries 4.4/4.6), and the hardware comparison against the O(n)
// Imase–Itoh baseline layout of [14].
//
// Usage:
//
//	layout -d 2 -diam 8          # one diameter in detail
//	layout -d 2 -sweep 20        # the Θ(√n) vs O(n) series up to D=20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/optics"
	"repro/internal/otis"
	"repro/internal/word"
)

func main() {
	d := flag.Int("d", 2, "degree")
	diam := flag.Int("diam", 8, "diameter of the de Bruijn digraph")
	sweep := flag.Int("sweep", 0, "if > 0, print the lens-scaling series for D = 1..sweep")
	svg := flag.String("svg", "", "write a scale drawing of the optimal bench to this file")
	flag.Parse()

	if *d < 2 {
		fmt.Fprintln(os.Stderr, "layout: need -d >= 2")
		os.Exit(2)
	}
	if *sweep > 0 {
		printSweep(*d, *sweep)
		return
	}
	printDetail(*d, *diam)
	if *svg != "" {
		writeSVG(*d, *diam, *svg)
	}
}

func writeSVG(d, D int, path string) {
	best, ok := otis.OptimalLayout(d, D)
	if !ok {
		fmt.Fprintln(os.Stderr, "layout: no layout to draw")
		os.Exit(1)
	}
	bench, err := optics.NewBench(best.P(), best.Q(), optics.DefaultPitch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layout:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layout:", err)
		os.Exit(1)
	}
	stride := 1
	if beams := best.P() * best.Q(); beams > 256 {
		stride = beams / 256
	}
	err = bench.WriteSVG(f, stride)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "layout:", err)
		os.Exit(1)
	}
	fmt.Printf("\nbench drawing written to %s\n", path)
}

func printDetail(d, D int) {
	n := word.Pow(d, D)
	fmt.Printf("OTIS layouts of B(%d,%d) (n = %d nodes, degree %d):\n\n", d, D, n, d)
	fmt.Printf("%4s %4s %10s %10s %12s  %s\n", "p'", "q'", "p", "q", "lenses", "layout?")
	for pPrime := 1; pPrime <= D; pPrime++ {
		qPrime := D + 1 - pPrime
		ok := otis.IsDeBruijnLayout(pPrime, qPrime)
		status := "no (f not cyclic)"
		if ok {
			status = "YES"
		}
		fmt.Printf("%4d %4d %10d %10d %12d  %s\n",
			pPrime, qPrime, word.Pow(d, pPrime), word.Pow(d, qPrime),
			word.Pow(d, pPrime)+word.Pow(d, qPrime), status)
	}
	best, ok := otis.OptimalLayout(d, D)
	if !ok {
		fmt.Println("\nno de Bruijn layout exists for this diameter")
		return
	}
	fmt.Printf("\noptimal: %v\n", best)
	fmt.Printf("baseline (Imase–Itoh layout of [14]): OTIS(%d,%d), %d lenses\n",
		d, n, otis.IILayoutLenses(d, n))
	fmt.Printf("hardware saving: %.1f×\n",
		float64(otis.IILayoutLenses(d, n))/float64(best.Lenses()))

	bench, err := optics.NewBench(best.P(), best.Q(), optics.DefaultPitch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "layout:", err)
		os.Exit(1)
	}
	if err := bench.VerifyTranspose(); err != nil {
		fmt.Fprintln(os.Stderr, "layout: optical verification failed:", err)
		os.Exit(1)
	}
	fmt.Printf("\noptical bench (paraxial model, %.0f µm pitch):\n", optics.DefaultPitch*1e6)
	fmt.Printf("  %v\n", optics.BillOfMaterials(bench, d))
	margin, worst := optics.WorstCaseMargin(bench, optics.DefaultBudget())
	fmt.Printf("  worst-case link margin %.2f dB (beam %d,%d)\n", margin, worst.I, worst.J)
	fmt.Println("  all", best.P()*best.Q(), "beams land on the transpose receiver — verified")
}

func printSweep(d, maxD int) {
	fmt.Printf("lens scaling for B(%d,D): optimized Θ(√n) vs baseline O(n)\n\n", d)
	fmt.Printf("%4s %12s %14s %14s %8s\n", "D", "n", "optimized", "baseline", "ratio")
	for D := 1; D <= maxD; D++ {
		n := word.Pow(d, D)
		base := otis.IILayoutLenses(d, n)
		best, ok := otis.OptimalLayout(d, D)
		if !ok {
			fmt.Printf("%4d %12d %14s %14d %8s\n", D, n, "none", base, "-")
			continue
		}
		fmt.Printf("%4d %12d %14d %14d %7.1fx\n",
			D, n, best.Lenses(), base, float64(base)/float64(best.Lenses()))
	}
}
