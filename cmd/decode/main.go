// decode demonstrates the Galileo-style Viterbi decoder on the de Bruijn
// trellis: it encodes a random message with a convolutional code, runs it
// through a binary symmetric channel, decodes, and reports the frame
// error rate over many trials — together with the de Bruijn/OTIS facts
// about the trellis interconnect.
//
// Usage:
//
//	decode -k 7 -rate 2 -p 0.02 -bits 200 -frames 50
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/debruijn"
	"repro/internal/otis"
	"repro/internal/viterbi"
)

func main() {
	k := flag.Int("k", 7, "constraint length K (trellis = B(2,K-1))")
	rate := flag.Int("rate", 2, "output bits per input bit (2 = NASA rate 1/2, 4 = Galileo-style)")
	p := flag.Float64("p", 0.02, "BSC crossover probability")
	bits := flag.Int("bits", 200, "message bits per frame")
	frames := flag.Int("frames", 50, "frames to simulate")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()

	var code viterbi.Code
	switch {
	case *k == 7 && *rate == 2:
		code = viterbi.NASA()
	case *rate == 4:
		code = viterbi.Galileo(*k)
	default:
		// Simple default taps for other shapes.
		mask := uint32(1)<<uint(*k) - 1
		gens := []uint32{0o171717 & mask, 0o133133 & mask, 0o165432 & mask, 0o117655 & mask}
		if *rate < 1 || *rate > len(gens) {
			fmt.Fprintln(os.Stderr, "decode: -rate must be 1..4")
			os.Exit(2)
		}
		code = viterbi.Code{K: *k, Generators: gens[:*rate]}
	}
	if err := code.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "decode:", err)
		os.Exit(2)
	}

	D := code.K - 1
	fmt.Printf("code: K=%d rate 1/%d — trellis = B(2,%d), %d states\n",
		code.K, code.Rate(), D, code.States())
	if layout, ok := otis.OptimalLayout(2, D); ok {
		fmt.Printf("optical ACS interconnect: %v\n", layout)
	}
	if D >= 2 {
		g := debruijn.DeBruijn(2, D)
		fmt.Printf("metric-exchange network: %d arcs, diameter %d\n", g.M(), g.Diameter())
	}

	rng := rand.New(rand.NewSource(*seed))
	frameErrors := 0
	bitErrors, totalBits, flips := 0, 0, 0
	for f := 0; f < *frames; f++ {
		msg := make([]byte, *bits)
		for i := range msg {
			msg[i] = byte(rng.Intn(2))
		}
		enc, err := code.Encode(msg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decode:", err)
			os.Exit(1)
		}
		noisy, nf := viterbi.BSC(enc, *p, rng)
		flips += nf
		dec, err := code.Decode(noisy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "decode:", err)
			os.Exit(1)
		}
		if !bytes.Equal(dec, msg) {
			frameErrors++
			for i := range msg {
				if dec[i] != msg[i] {
					bitErrors++
				}
			}
		}
		totalBits += len(msg)
	}
	fmt.Printf("\nchannel: BSC p=%.3f (%d of %d coded bits flipped)\n",
		*p, flips, (*bits+code.K-1)*code.Rate()**frames)
	fmt.Printf("result:  %d/%d frame errors, %.2e residual BER\n",
		frameErrors, *frames, float64(bitErrors)/float64(totalBits))
}
