// figures regenerates every figure and worked example of the paper as
// text, and optionally runs the full claim registry (every proposition,
// corollary, remark, table and figure, each with a constructive check).
//
// Usage:
//
//	figures            # print Figures 1-8
//	figures -verify    # also run the claim registry
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/debruijn"
	"repro/internal/digraph"
	"repro/internal/otis"
	"repro/internal/word"
)

func main() {
	verify := flag.Bool("verify", false, "run the full claim registry after printing the figures")
	dotDir := flag.String("dot", "", "also write the figure digraphs as Graphviz .dot files into this directory")
	flag.Parse()

	figure123()
	figure4()
	figure5()
	figure6()
	figure78()

	if *dotDir != "" {
		writeDots(*dotDir)
	}

	if *verify {
		fmt.Println("\n=== claim registry ===")
		failed := 0
		for _, r := range core.VerifyAll() {
			fmt.Println(r)
			if !r.OK() {
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "figures: %d claims FAILED\n", failed)
			os.Exit(1)
		}
		fmt.Println("all claims verified")
	}
}

func writeDots(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	wordLabel := func(d, D int) func(int) string {
		return func(u int) string { return word.MustFromInt(d, D, u).String() }
	}
	targets := []struct {
		file  string
		g     *digraph.Digraph
		label func(int) string
	}{
		{"fig1_debruijn_2_3.dot", debruijn.DeBruijn(2, 3), wordLabel(2, 3)},
		{"fig2_rrk_2_8.dot", debruijn.RRK(2, 8), nil},
		{"fig3_ii_2_8.dot", debruijn.ImaseItoh(2, 8), nil},
		{"fig5_example332.dot", core.Example332().Digraph(), wordLabel(2, 3)},
		{"fig7_h_4_8_2.dot", otis.MustH(4, 8, 2), wordLabel(2, 4)},
	}
	for _, t := range targets {
		path := dir + "/" + t.file
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		err = t.g.WriteDOT(f, t.file, t.label)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
}

func adjacencyByWord(g *digraph.Digraph, d, D int) {
	word.Enumerate(d, D, func(x word.Word) bool {
		fmt.Printf("  %s ->", x)
		for _, v := range g.SortedOut(x.Int()) {
			fmt.Printf(" %s", word.MustFromInt(d, D, v))
		}
		fmt.Println()
		return true
	})
}

func adjacencyByInt(g *digraph.Digraph) {
	for u := 0; u < g.N(); u++ {
		fmt.Printf("  %d -> %v\n", u, g.SortedOut(u))
	}
}

func figure123() {
	fmt.Println("Figure 1: de Bruijn B(2,3) (degree 2, diameter 3, 8 nodes)")
	adjacencyByWord(debruijn.DeBruijn(2, 3), 2, 3)
	fmt.Println("\nFigure 2: RRK(2,8)  —  u -> {2u, 2u+1 mod 8}")
	adjacencyByInt(debruijn.RRK(2, 8))
	fmt.Println("\nFigure 3: II(2,8)   —  u -> {-2u-1, -2u-2 mod 8}")
	adjacencyByInt(debruijn.ImaseItoh(2, 8))
	mapping, err := debruijn.IsoIIToB(2, 3)
	if err != nil {
		fmt.Println("  isomorphism FAILED:", err)
		return
	}
	fmt.Println("\n  isomorphism II(2,8) → B(2,3) (Proposition 3.3 witness):")
	fmt.Print("  ")
	for u, v := range mapping {
		fmt.Printf("%d↦%s ", u, word.MustFromInt(2, 3, v))
	}
	fmt.Println()
}

func figure4() {
	fmt.Println("\nFigure 4: example 3.3.1 — H = A(f, Id, 2), d = 2, dimension 6")
	a := core.Example331()
	f := a.F()
	fmt.Printf("  f = %v (one-line %v), cyclic: %v\n", f, f.OneLine(), f.IsCyclic())
	g, _ := a.GPerm()
	fmt.Printf("  g(i) = f^i(2): %v — the orbit drawn in Figure 4\n", g.OneLine())
	if _, err := a.VerifiedIsoToDeBruijn(); err != nil {
		fmt.Println("  isomorphism to B(2,6) FAILED:", err)
		return
	}
	fmt.Println("  H ≅ B(2,6): verified via the Proposition 3.9 witness")
}

func figure5() {
	fmt.Println("\nFigure 5: example 3.3.2 — H = A(f, Id, 1), f(i) = 2-i on Z_3, d = 2")
	a := core.Example332()
	fmt.Println("  adjacency:")
	adjacencyByWord(a.Digraph(), 2, 3)
	fmt.Println("  components (Remark 3.10):")
	for _, comp := range a.Decompose() {
		fmt.Printf("    C_%d ⊗ B(2,%d) on {", comp.CircuitLen, comp.DeBruijnDim)
		for i, v := range comp.Vertices {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Print(word.MustFromInt(2, 3, v))
		}
		fmt.Println("}")
	}
	if err := a.VerifyDecomposition(); err != nil {
		fmt.Println("  decomposition FAILED:", err)
	} else {
		fmt.Println("  every component verified isomorphic to its model")
	}
}

func figure6() {
	fmt.Println("\nFigure 6: OTIS(3,6) — transmitter (i,j) -> receiver (5-j, 2-i)")
	s, _ := otis.NewSystem(3, 6)
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			ri, rj := s.Receiver(i, j)
			fmt.Printf("  T(%d,%d) -> R(%d,%d)", i, j, ri, rj)
			if j == 5 {
				fmt.Println()
			}
		}
	}
	fmt.Printf("  lenses: %d + %d = %d\n", 3, 6, s.Lenses())
}

func figure78() {
	fmt.Println("\nFigure 7: H(4,8,2) — 16 nodes from OTIS(4,8), degree 2")
	h := otis.MustH(4, 8, 2)
	adjacencyByWord(h, 2, 4)
	fmt.Println("\nFigure 8: H(4,8,2) ≅ B(2,4) with adjacency x3x2x1x0 -> {x̄1x̄0αx̄3}")
	mapping, err := otis.LayoutWitness(2, 2, 3)
	if err != nil {
		fmt.Println("  FAILED:", err)
		return
	}
	if err := digraph.VerifyIsomorphism(h, debruijn.DeBruijn(2, 4), mapping); err != nil {
		fmt.Println("  witness verification FAILED:", err)
		return
	}
	fmt.Println("  witness H -> B(2,4):")
	for u, v := range mapping {
		fmt.Printf("  %s↦%s", word.MustFromInt(2, 4, u), word.MustFromInt(2, 4, v))
		if u%8 == 7 {
			fmt.Println()
		}
	}
}
