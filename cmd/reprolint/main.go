// reprolint runs the repository's static-analysis suite (internal/lint)
// over the module: panic-message hygiene, slice-aliasing contracts,
// overflow guards on d^D loops, dropped errors in the command layer, and
// concurrency hygiene in the parallel kernels.
//
// Usage:
//
//	reprolint ./...            # whole module (the default)
//	reprolint ./internal/word  # one package
//	reprolint -json ./...      # machine-readable findings
//
// The exit status is 0 when the tree is clean, 1 when there are
// findings, 2 on usage or load errors. Suppress a false positive with a
// "//lint:ignore <analyzer> <reason>" directive on (or directly above)
// the offending line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.All())
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "reprolint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
