// reprolint runs the repository's static-analysis suite (internal/lint)
// over the module: panic-message hygiene, slice-aliasing contracts,
// overflow guards on d^D loops, dropped errors in the command layer,
// concurrency hygiene in the parallel kernels, atomic/lock access
// discipline, seeded-determinism rules, hot-path allocation budgets and
// int32 slab-narrowing guards.
//
// Usage:
//
//	reprolint ./...                        # whole module, full suite
//	reprolint ./internal/word              # one package
//	reprolint -json ./...                  # machine-readable findings
//	reprolint -list                        # name + one-line doc per analyzer
//	reprolint -analyzers hotalloc,slabindex ./...  # CI subset split
//
// The exit status is 0 when the tree is clean, 1 when there are
// findings, 2 on usage or load errors — identically with and without
// -json. Suppress a false positive with a "//lint:ignore <analyzer>
// <reason>" directive on (or directly above) the offending line; a
// directive that suppresses nothing is itself reported (unuseddirective).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list the analyzers (name + one-line doc) and exit")
	subset := flag.String("analyzers", "", "comma-separated analyzer subset to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *subset != "" {
		var names []string
		for _, n := range strings.Split(*subset, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		var err error
		analyzers, err = lint.ByName(names)
		if err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
		if len(analyzers) == 0 {
			fmt.Fprintln(os.Stderr, "reprolint: -analyzers selected nothing")
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, analyzers)
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "reprolint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "reprolint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}
