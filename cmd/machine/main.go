// machine builds a complete optical de Bruijn machine for a given degree
// and diameter, audits every layer (graph theory, optics, diffraction,
// power, routing) and reports the hardware — the one-command summary of
// what the paper's construction buys.
//
// Usage:
//
//	machine -d 2 -diam 8
//	machine -d 3 -diam 4 -pitch 125e-6
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/machine"
	"repro/internal/optics"
	"repro/internal/otis"
	"repro/internal/simnet"
)

func main() {
	d := flag.Int("d", 2, "degree")
	diam := flag.Int("diam", 8, "diameter")
	budget := flag.Int("budget", 0, "if > 0, plan the largest machine within this many processors instead of using -diam")
	pitch := flag.Float64("pitch", optics.DefaultPitch, "transceiver pitch (m)")
	flag.Parse()

	if *budget > 0 {
		plan, ok := machine.Plan(*d, *budget)
		if !ok {
			fmt.Fprintf(os.Stderr, "machine: no degree-%d machine fits %d processors\n", *d, *budget)
			os.Exit(1)
		}
		fmt.Printf("budget %d processors → %v\n", *budget, plan)
		*diam = plan.Diam
	}

	m, err := machine.Build(*d, *diam, *pitch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "machine:", err)
		os.Exit(1)
	}
	report, err := m.Audit()
	fmt.Print(report)
	if err != nil {
		fmt.Fprintln(os.Stderr, "machine: AUDIT FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("\nhardware:", m.BOM())
	fmt.Println("assembly tolerances:", m.Bench.ToleranceReport())
	fmt.Printf("baseline comparison: %d lenses here vs %d for the O(n) layout\n",
		m.Lenses(), otis.IILayoutLenses(*d, m.Nodes()))

	// A quick traffic shakedown.
	res, err := m.Run(simnet.UniformRandom(m.Nodes(), 4*m.Nodes(), 1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "machine:", err)
		os.Exit(1)
	}
	fmt.Printf("shakedown: %v\n", res)
	if res.MaxHops > *diam {
		fmt.Fprintln(os.Stderr, "machine: hop bound violated!")
		os.Exit(1)
	}
	fmt.Println("machine OK")
}
