// serve is the long-lived multi-tenant session service: an HTTP/JSON
// front end over the internal/serve scheduler, hosting many concurrent
// persistent self-healing simulation sessions on one shared compiled
// B(d,D) network, with always-on background chaos and per-tenant SLO
// accounting.
//
// Usage:
//
//	serve -addr :8080 -d 2 -diam 8 -workers 8 -chaos 2
//
// Endpoints:
//
//	POST /v1/session   {"tenant":"acme","queue_capacity":8}   -> {"session":0}
//	POST /v1/run       {"session":0,"packets":256,"seed":7}   -> serve.Outcome
//	POST /v1/close     {"session":0}                          -> {"closed":0}
//	GET  /v1/status?session=0                                 -> serve.SessionStatus
//	GET  /v1/sessions                                         -> [serve.SessionStatus]
//	GET  /v1/slo                                              -> SLO_report/v1
//	GET  /debug/vars                                          -> expvar (per-tenant registries under tenant_<name>)
//	GET  /debug/pprof/                                        -> pprof
//
// SIGINT/SIGTERM drain gracefully: in-flight runs complete, queued
// requests shed with exact accounting, and the final SLO report is
// written to stdout.
//
// Self-drive modes (no HTTP client needed, used by scripts/check.sh):
//
//	serve -smoke              # start, drive N tenants over HTTP, validate SLO, drain
//	serve -loadtest           # direct scheduler load: -sessions/-tenants/-runs/-packets
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/debruijn"
	"repro/internal/serve"
	"repro/internal/simnet"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	d := flag.Int("d", 2, "de Bruijn degree")
	diam := flag.Int("diam", 8, "de Bruijn diameter")
	workers := flag.Int("workers", 8, "scheduler worker pool size")
	maxSessions := flag.Int("max-sessions", 4096, "live session cap")
	queueDepth := flag.Int("queue-depth", 16, "per-session request queue depth")
	chaos := flag.Float64("chaos", 2, "background chaos rate (faults per 1000 session cycles; <0 disables)")
	chaosSeed := flag.Int64("chaos-seed", 1, "chaos seed")
	drain := flag.Duration("drain", 10*time.Second, "graceful drain deadline on shutdown")
	smoke := flag.Bool("smoke", false, "self-drive an HTTP smoke test and exit")
	loadtest := flag.Bool("loadtest", false, "run the scheduler load test and exit")
	sessions := flag.Int("sessions", 1000, "loadtest: session count")
	tenants := flag.Int("tenants", 20, "loadtest: tenant count")
	runs := flag.Int("runs", 2, "loadtest: submits per session")
	packets := flag.Int("packets", 16, "loadtest: packets per submit")
	flag.Parse()

	g := debruijn.DeBruijn(*d, *diam)
	sched, err := serve.New(g, serve.Config{
		MaxSessions:   *maxSessions,
		QueueDepth:    *queueDepth,
		DrainDeadline: int64(*drain),
		ChaosRate:     *chaos,
		ChaosSeed:     *chaosSeed,
		Now:           func() int64 { return time.Now().UnixNano() },
		ExpvarPrefix:  "tenant",
	})
	if err != nil {
		fatal(err)
	}
	if err := sched.Start(*workers); err != nil {
		fatal(err)
	}

	switch {
	case *loadtest:
		if err := runLoadTest(sched, g.N(), *sessions, *tenants, *runs, *packets); err != nil {
			fatal(err)
		}
		return
	case *smoke:
		if err := runSmoke(sched, g.N()); err != nil {
			fatal(err)
		}
		return
	}

	mux := http.DefaultServeMux
	registerAPI(mux, sched, g.N())
	srv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "serve: B(%d,%d), %d nodes, listening on %s\n", *d, *diam, g.N(), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "serve: %v, draining\n", got)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "serve: http close: %v\n", err)
	}
	stats, err := sched.Shutdown()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	}
	fmt.Fprintf(os.Stderr, "serve: drained %d sessions in %s\n", stats.Sessions, time.Duration(stats.Duration))
	emitSLO(sched)
	if err != nil {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}

func emitSLO(sched *serve.Scheduler) {
	data, err := sched.SLOReport().MarshalIndent()
	if err != nil {
		fatal(err)
	}
	if _, err := os.Stdout.Write(data); err != nil {
		fatal(err)
	}
}

// API wire types.
type createReq struct {
	Tenant         string  `json:"tenant"`
	AdmissionRate  float64 `json:"admission_rate,omitempty"`  // packets/second; 0: unlimited
	AdmissionBurst int     `json:"admission_burst,omitempty"` // packets
	QueueCapacity  int     `json:"queue_capacity,omitempty"`
	HoldBudget     int     `json:"hold_budget,omitempty"`
	TimeoutMS      int64   `json:"timeout_ms,omitempty"`
	MaxRetries     int     `json:"max_retries,omitempty"`
}

type runReq struct {
	Session int64 `json:"session"`
	Packets int   `json:"packets"`
	Seed    int64 `json:"seed"`
}

type sessionRef struct {
	Session int64 `json:"session"`
}

func registerAPI(mux *http.ServeMux, sched *serve.Scheduler, n int) {
	mux.HandleFunc("POST /v1/session", func(w http.ResponseWriter, r *http.Request) {
		var req createReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		tc := serve.TenantConfig{
			Tenant:         req.Tenant,
			QueueCapacity:  req.QueueCapacity,
			HoldBudget:     req.HoldBudget,
			RequestTimeout: req.TimeoutMS * int64(time.Millisecond),
			MaxRetries:     req.MaxRetries,
		}
		if req.AdmissionRate > 0 {
			tc.Admission = &serve.AdmissionConfig{Rate: req.AdmissionRate, Burst: req.AdmissionBurst}
		}
		sid, err := sched.CreateSession(tc)
		if err != nil {
			httpErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, sessionRef{Session: sid})
	})
	mux.HandleFunc("POST /v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req runReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		if req.Packets <= 0 {
			req.Packets = 64
		}
		out, err := sched.Submit(req.Session, simnet.UniformRandom(n, req.Packets, req.Seed))
		if err != nil {
			httpErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("POST /v1/close", func(w http.ResponseWriter, r *http.Request) {
		var req sessionRef
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		if err := sched.CloseSession(req.Session); err != nil {
			httpErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, map[string]int64{"closed": req.Session})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		var sid int64
		if _, err := fmt.Sscan(r.URL.Query().Get("session"), &sid); err != nil {
			httpErr(w, http.StatusBadRequest, fmt.Errorf("session query parameter: %w", err))
			return
		}
		st, err := sched.Status(sid)
		if err != nil {
			httpErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, sched.Sessions())
	})
	mux.HandleFunc("GET /v1/slo", func(w http.ResponseWriter, r *http.Request) {
		data, err := sched.SLOReport().MarshalIndent()
		if err != nil {
			httpErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(data); err != nil {
			fmt.Fprintf(os.Stderr, "serve: slo write: %v\n", err)
		}
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "serve: response write: %v\n", err)
	}
}

func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); err != nil {
		fmt.Fprintf(os.Stderr, "serve: error write: %v\n", err)
	}
}

// runSmoke starts the HTTP server on a loopback port and drives it the
// way a client would: create tenants with different knobs, run load,
// read status and the SLO report, validate it, then drain — the
// scripts/check.sh service gate, with no external HTTP tooling needed.
func runSmoke(sched *serve.Scheduler, n int) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	registerAPI(mux, sched, n)
	srv := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	post := func(path string, body any, out any) error {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return err
		}
		defer func() {
			if err := resp.Body.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "serve: body close: %v\n", err)
			}
		}()
		if resp.StatusCode != http.StatusOK {
			var e map[string]string
			_ = json.NewDecoder(resp.Body).Decode(&e)
			return fmt.Errorf("%s: %s (%s)", path, resp.Status, e["error"])
		}
		return json.NewDecoder(resp.Body).Decode(out)
	}

	const tenants = 4
	const perTenant = 8
	var sids []int64
	for t := 0; t < tenants; t++ {
		cr := createReq{Tenant: fmt.Sprintf("smoke_%d", t)}
		if t == tenants-1 {
			cr.AdmissionRate = 1 // starved tenant: sheds under load
			cr.AdmissionBurst = 64
		}
		for k := 0; k < perTenant; k++ {
			var ref sessionRef
			if err := post("/v1/session", cr, &ref); err != nil {
				return err
			}
			sids = append(sids, ref.Session)
		}
	}
	for r := 0; r < 3; r++ {
		for i, sid := range sids {
			var out serve.Outcome
			if err := post("/v1/run", runReq{Session: sid, Packets: 32, Seed: int64(i*10 + r)}, &out); err != nil {
				return err
			}
			if out.Status != serve.StatusOK && out.Status != serve.StatusShed {
				return fmt.Errorf("session %d: outcome status %q", sid, out.Status)
			}
		}
	}
	var st serve.SessionStatus
	resp, err := client.Get(fmt.Sprintf("%s/v1/status?session=%d", base, sids[0]))
	if err != nil {
		return err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if st.Runs == 0 {
		return fmt.Errorf("session %d reports 0 runs after load", sids[0])
	}
	resp, err = client.Get(base + "/v1/slo")
	if err != nil {
		return err
	}
	sloData, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := serve.ValidateSLOReport(sloData); err != nil {
		return fmt.Errorf("SLO report over HTTP does not validate: %w", err)
	}
	if err := srv.Close(); err != nil {
		return err
	}
	<-errc // http.ErrServerClosed
	start := time.Now()
	stats, err := sched.Shutdown()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: smoke ok — %d sessions, drained in %s (wall %s)\n",
		len(sids), time.Duration(stats.Duration), time.Since(start))
	emitSLO(sched)
	return nil
}

// runLoadTest drives the scheduler directly (no HTTP) at scale and
// asserts the aggregate accounting invariant.
func runLoadTest(sched *serve.Scheduler, n, sessions, tenants, runs, packets int) error {
	if tenants < 1 {
		tenants = 1
	}
	sids := make([]int64, sessions)
	for i := range sids {
		var err error
		sids[i], err = sched.CreateSession(serve.TenantConfig{
			Tenant: fmt.Sprintf("load_%d", i%tenants),
		})
		if err != nil {
			return err
		}
	}
	start := time.Now()
	const drivers = 32
	errs := make(chan error, drivers)
	for w := 0; w < drivers; w++ {
		go func(w int) {
			for i := w; i < sessions; i += drivers {
				for r := 0; r < runs; r++ {
					if _, err := sched.Submit(sids[i], simnet.UniformRandom(n, packets, int64(i*runs+r))); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < drivers; w++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	wall := time.Since(start)
	stats, err := sched.Shutdown()
	if err != nil {
		return err
	}
	rep := sched.SLOReport()
	data, err := rep.MarshalIndent()
	if err != nil {
		return err
	}
	if err := serve.ValidateSLOReport(data); err != nil {
		return fmt.Errorf("SLO report does not validate after load: %w", err)
	}
	want := int64(sessions * runs * packets)
	if rep.Total.Offered != want {
		return fmt.Errorf("offered %d, want %d", rep.Total.Offered, want)
	}
	if got := rep.Total.Delivered + rep.Total.Dropped + rep.Total.Shed; got != rep.Total.Offered {
		return fmt.Errorf("accounting %d != offered %d — packets lost", got, rep.Total.Offered)
	}
	fmt.Fprintf(os.Stderr,
		"serve: loadtest ok — %d sessions, %d tenants, %d offered, %.3f delivered fraction, %s wall, drained %d sessions in %s\n",
		sessions, tenants, rep.Total.Offered, rep.Total.DeliveredFraction, wall,
		stats.Sessions, time.Duration(stats.Duration))
	if _, err := os.Stdout.Write(data); err != nil {
		return err
	}
	return nil
}
